"""JSON snapshot export/import."""

import json

import pytest

from repro.core.classification import ClassificationSet
from repro.core.material import CourseLevel, Material, MaterialKind
from repro.core.ontology import BloomLevel
from repro.core.persist import (
    export_repository,
    import_repository,
    load_json,
    save_json,
)
from repro.core.repository import Role
from repro.corpus import keys as K


@pytest.fixture()
def populated(fresh_repo):
    cs = ClassificationSet()
    cs.add("CS13", K.SDF_ARRAYS, BloomLevel.USAGE)
    cs.add("PDC12", K.P_OPENMP)
    fresh_repo.add_material(
        Material(
            title="Snapshot target",
            description="a material with every field set",
            kind=MaterialKind.LECTURE_SLIDES,
            authors=("Ada", "Bob"),
            url="http://example.org",
            course_level=CourseLevel.CS2,
            languages=("C",),
            datasets=("numbers",),
            tags=("demo",),
            collection="snap",
            year=2019,
        ),
        cs,
    )
    fresh_repo.add_user("ed", Role.EDITOR)
    return fresh_repo


class TestRoundTrip:
    def test_material_fields_survive(self, populated):
        restored = import_repository(export_repository(populated))
        m = restored.materials("snap")[0]
        original = populated.materials("snap")[0]
        assert m == original  # Material is a frozen dataclass

    def test_classifications_survive_with_bloom(self, populated):
        restored = import_repository(export_repository(populated))
        mid = restored.materials("snap")[0].id
        cs = restored.classification_of(mid)
        assert cs.has("CS13", K.SDF_ARRAYS)
        assert cs.bloom("CS13", K.SDF_ARRAYS) is BloomLevel.USAGE
        assert cs.has("PDC12", K.P_OPENMP)

    def test_material_ids_preserved(self, populated):
        original_id = populated.materials("snap")[0].id
        restored = import_repository(export_repository(populated))
        assert restored.materials("snap")[0].id == original_id

    def test_users_survive(self, populated):
        restored = import_repository(export_repository(populated))
        assert restored.db.table("users").find_one(name="ed")["role"] == "editor"

    def test_ontologies_self_contained(self, populated):
        data = export_repository(populated)
        restored = import_repository(data)
        assert len(restored.ontology("CS13")) == len(populated.ontology("CS13"))
        # node metadata survives
        node = restored.ontology("CS13").node(K.SDF_ARRAYS)
        assert node.label == "Arrays"

    def test_snapshot_is_pure_json(self, populated):
        data = export_repository(populated)
        json.dumps(data)  # must not raise

    def test_file_round_trip(self, populated, tmp_path):
        path = save_json(populated, tmp_path / "snap.json")
        restored = load_json(path)
        assert restored.material_count() == populated.material_count()

    def test_seeded_repository_round_trip(self, seeded_repo):
        restored = import_repository(export_repository(seeded_repo))
        assert restored.material_count() == 97
        assert (
            restored.stats()["classification_links"]
            == seeded_repo.stats()["classification_links"]
        )
        # an analysis gives identical results on the restored copy
        from repro.core.coverage import compute_coverage

        a = compute_coverage(seeded_repo, "CS13", collection="nifty")
        b = compute_coverage(restored, "CS13", collection="nifty")
        assert a.rollup_counts == b.rollup_counts


class TestVersioning:
    def test_current_dumps_are_format_2(self, populated):
        data = export_repository(populated)
        assert data["format_version"] == 2
        assert "database" in data  # engine-level snapshot, not a re-play

    def test_unknown_version_rejected(self, populated):
        data = export_repository(populated)
        data["format_version"] = 99
        with pytest.raises(ValueError):
            import_repository(data)

    def test_missing_version_rejected(self, populated):
        data = export_repository(populated)
        del data["format_version"]
        with pytest.raises(ValueError):
            import_repository(data)

    def test_v2_restore_is_engine_exact(self, populated):
        restored = import_repository(export_repository(populated))
        # Engine state round-trips bit-for-bit: the global version
        # counter and every per-table counter survive (a v1 re-play
        # would renumber them).
        assert restored.db.version == populated.db.version
        assert restored.db.table_versions() == populated.db.table_versions()
        # Secondary indexes were rebuilt, not dropped.
        assert restored.db.table("materials").has_index("collection")
        assert restored.db.table("ontology_entries").has_index("key")

    def test_v1_dump_migrates(self, populated):
        m = populated.materials("snap")[0]
        cs = populated.classification_of(m.id)
        v1 = {
            "format_version": 1,
            "ontologies": export_repository(populated)["ontologies"],
            "users": populated.db.table("users").find(),
            "materials": [{
                "id": m.id,
                "title": m.title,
                "description": m.description,
                "kind": m.kind.value,
                "authors": list(m.authors),
                "url": m.url,
                "course_level": m.course_level.value,
                "languages": list(m.languages),
                "datasets": list(m.datasets),
                "tags": list(m.tags),
                "collection": m.collection,
                "year": m.year,
                "classifications": [
                    {"ontology": i.ontology, "key": i.key,
                     "bloom": i.bloom.value if i.bloom else None}
                    for i in cs.items()
                ],
            }],
        }
        restored = import_repository(v1)
        assert restored.materials("snap")[0] == m
        assert restored.classification_of(m.id).has("CS13", K.SDF_ARRAYS)
        # Re-saving upgrades the dump to the current format.
        assert export_repository(restored)["format_version"] == 2


class TestAtomicSave:
    def test_failed_save_leaves_previous_dump_intact(
        self, populated, tmp_path, monkeypatch
    ):
        import repro.core.persist as persist

        path = save_json(populated, tmp_path / "snap.json")
        before = path.read_text()

        def boom(*args, **kwargs):
            raise RuntimeError("disk full")

        monkeypatch.setattr(persist.json, "dump", boom)
        with pytest.raises(RuntimeError):
            save_json(populated, path)
        # The crash hit the temp file; the published dump is untouched
        # and still loads.
        assert path.read_text() == before
        monkeypatch.undo()
        assert load_json(path).material_count() == populated.material_count()

    def test_save_replaces_not_appends(self, populated, tmp_path):
        path = tmp_path / "snap.json"
        save_json(populated, path)
        first = path.read_text()
        save_json(populated, path)
        assert path.read_text() == first
        assert not (tmp_path / "snap.json.tmp").exists()
