"""Faceted + full-text search.

Every test here runs against both backends — the incremental BM25
inverted index (default) and the dense TF-IDF escape hatch
(``CARCS_SEARCH=dense``) — since the two must agree on facet semantics
and edge behaviour even where ranking formulas differ.
"""

import threading

import pytest

from repro.core.classification import ClassificationSet
from repro.core.material import CourseLevel, Material, MaterialKind
from repro.core.search import SearchEngine, SearchFilters
from repro.corpus import keys as K


@pytest.fixture(params=["bm25", "dense"])
def engine(fresh_repo, request):
    def add(title, desc, *, keys=(), **mat):
        cs = ClassificationSet()
        for key in keys:
            cs.add(key.split("/", 1)[0], key)
        return fresh_repo.add_material(
            Material(title=title, description=desc, **mat), cs
        )

    add("Parallel loops with OpenMP", "Use OpenMP pragmas for parallel loops",
        keys=[K.P_OPENMP, K.PD_LOOPS], languages=("C",),
        course_level=CourseLevel.INTERMEDIATE, collection="pdc", year=2018)
    add("Sorting visualizer", "Animate bubble sort and merge sort",
        keys=[K.AL_SORT_QUAD], languages=("Python",),
        course_level=CourseLevel.CS1, collection="intro", year=2015,
        datasets=("random numbers",))
    add("Binary search trees", "Build a BST with insert and delete",
        keys=[K.AL_BST], languages=("Java",),
        course_level=CourseLevel.CS2, collection="intro", year=2012,
        kind=MaterialKind.LECTURE_SLIDES, tags=("trees",))
    return SearchEngine(fresh_repo, mode=request.param)


class TestFullText:
    def test_ranked_by_relevance(self, engine):
        hits = engine.search("parallel openmp loops")
        assert hits[0].material.title == "Parallel loops with OpenMP"
        assert hits[0].score > 0

    def test_empty_query_returns_facet_matches(self, engine):
        hits = engine.search("", SearchFilters(collections=("intro",)))
        assert len(hits) == 2
        assert all(h.score == 1.0 for h in hits)

    def test_no_match_returns_empty(self, engine):
        assert engine.search("quantum entanglement blockchain") == []

    def test_limit(self, engine):
        assert len(engine.search("sort search tree loops", limit=1)) <= 1


class TestFacets:
    def test_filter_by_language_case_insensitive(self, engine):
        hits = engine.search("", SearchFilters(languages=("python",)))
        assert [h.material.title for h in hits] == ["Sorting visualizer"]

    def test_filter_by_kind(self, engine):
        hits = engine.search(
            "", SearchFilters(kinds=(MaterialKind.LECTURE_SLIDES,))
        )
        assert [h.material.title for h in hits] == ["Binary search trees"]

    def test_filter_by_course_level(self, engine):
        hits = engine.search("", SearchFilters(course_levels=(CourseLevel.CS1,)))
        assert [h.material.title for h in hits] == ["Sorting visualizer"]

    def test_filter_by_year_range(self, engine):
        hits = engine.search("", SearchFilters(years=(2014, 2019)))
        titles = {h.material.title for h in hits}
        assert titles == {"Parallel loops with OpenMP", "Sorting visualizer"}

    def test_filter_requires_datasets(self, engine):
        hits = engine.search("", SearchFilters(datasets_required=True))
        assert [h.material.title for h in hits] == ["Sorting visualizer"]

    def test_filter_rejects_datasets(self, engine):
        hits = engine.search("", SearchFilters(datasets_required=False))
        assert len(hits) == 2

    def test_filter_by_tags(self, engine):
        hits = engine.search("", SearchFilters(tags=("trees",)))
        assert [h.material.title for h in hits] == ["Binary search trees"]

    def test_filter_under_ontology_subtree(self, engine):
        # everything under the CS13 Algorithms area
        hits = engine.search("", SearchFilters(under=("CS13/AL",)))
        titles = {h.material.title for h in hits}
        assert titles == {"Sorting visualizer", "Binary search trees"}

    def test_filter_under_pdc_subtree(self, engine):
        hits = engine.search("", SearchFilters(under=("PDC12/PROG",)))
        assert [h.material.title for h in hits] == ["Parallel loops with OpenMP"]

    def test_multiple_subtrees_are_conjunctive(self, engine):
        hits = engine.search(
            "", SearchFilters(under=("PDC12/PROG", "CS13/AL"))
        )
        assert hits == []

    def test_facets_combine_with_text(self, engine):
        hits = engine.search("sort", SearchFilters(collections=("intro",)))
        assert hits and hits[0].material.title == "Sorting visualizer"


class TestSimilarTo:
    def test_similar_to_excludes_self(self, engine, fresh_repo):
        first = fresh_repo.materials()[0]
        hits = engine.similar_to(first.id)
        assert all(h.material.id != first.id for h in hits)

    def test_unknown_material(self, engine):
        with pytest.raises(KeyError):
            engine.similar_to(9999)

    def test_index_refreshes_after_insert(self, engine, fresh_repo):
        engine.search("x")  # force initial index
        fresh_repo.add_material(
            Material(title="Graph coloring", description="color a graph",
                     collection="new")
        )
        hits = engine.search("graph coloring")
        assert hits and hits[0].material.title == "Graph coloring"


class TestEdgeCases:
    """The corners the original suite missed (ISSUE 3 satellite)."""

    @pytest.fixture(params=["bm25", "dense"])
    def empty_engine(self, fresh_repo, request):
        return SearchEngine(fresh_repo, mode=request.param)

    def test_empty_corpus_text_search(self, empty_engine):
        assert empty_engine.search("anything at all") == []

    def test_empty_corpus_facet_search(self, empty_engine):
        assert empty_engine.search(
            "", SearchFilters(collections=("nowhere",))
        ) == []

    def test_empty_corpus_similar_to(self, empty_engine):
        with pytest.raises(KeyError):
            empty_engine.similar_to(1)

    def test_stopword_only_query_matches_nothing(self, engine):
        # Every token is removed by the stopword list, so the query
        # carries no signal; both backends must return nothing rather
        # than everything.
        assert engine.search("the and of is was") == []

    def test_facet_filter_with_zero_candidates(self, engine):
        assert engine.search(
            "sort", SearchFilters(collections=("no-such-collection",))
        ) == []
        assert engine.search(
            "", SearchFilters(tags=("no-such-tag",), languages=("python",))
        ) == []

    def test_similar_to_just_deleted_material(self, engine, fresh_repo):
        victim = fresh_repo.materials()[0]
        assert engine.similar_to(victim.id) is not None  # warm index
        fresh_repo.delete_material(victim.id)
        with pytest.raises(KeyError):
            engine.similar_to(victim.id)

    def test_deleted_material_leaves_search_results(self, engine, fresh_repo):
        victim = fresh_repo.materials()[0]  # the OpenMP material
        assert engine.search("openmp")
        fresh_repo.delete_material(victim.id)
        assert engine.search("openmp") == []

    def test_mutation_during_search_under_rwlock(self, engine, fresh_repo):
        """Concurrent searches and writes serialize on the repository
        RWLock: no crash, no half-built index, and the final state
        matches a from-scratch engine."""
        errors: list[BaseException] = []
        stop = threading.Event()

        def searcher():
            try:
                while not stop.is_set():
                    for hit in engine.search("sort parallel tree"):
                        assert hit.score > 0.0
                    engine.search("", SearchFilters(collections=("intro",)))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=searcher) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i in range(25):
                m = fresh_repo.add_material(
                    Material(title=f"churn {i}", description="sort graph")
                )
                fresh_repo.update_material(m.id, description="parallel scan")
                fresh_repo.delete_material(m.id)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert errors == []
        reference = SearchEngine(fresh_repo, mode=engine.mode)
        reference.refresh()
        got = [(h.material.id, h.score) for h in engine.search("sort")]
        want = [(h.material.id, h.score) for h in reference.search("sort")]
        assert got == want
