"""Shared-item similarity and the Figure 3 graph builder."""

import numpy as np
import pytest

from repro.core.classification import ClassificationSet
from repro.core.material import Material
from repro.core.similarity import (
    clusters,
    edges_with_shared_keys,
    incidence,
    isolated_materials,
    jaccard_matrix,
    shared_item_matrix,
    similarity_graph,
)
from repro.corpus import keys as K


def add(repo, title, keys, collection="c"):
    cs = ClassificationSet()
    for key in keys:
        cs.add(key.split("/", 1)[0], key)
    return repo.add_material(
        Material(title=title, description="d", collection=collection), cs
    )


@pytest.fixture()
def trio(fresh_repo):
    a = add(fresh_repo, "A", [K.SDF_ARRAYS, K.SDF_CTRL, K.AL_BIGO])
    b = add(fresh_repo, "B", [K.SDF_ARRAYS, K.SDF_CTRL])
    c = add(fresh_repo, "C", [K.AL_BIGO])
    return fresh_repo, a, b, c


class TestIncidence:
    def test_matrix_shape_and_content(self, trio):
        repo, a, b, c = trio
        space = incidence(repo, [a.id, b.id, c.id])
        assert space.matrix.shape == (3, 3)  # three distinct entries
        assert space.matrix.sum() == 6
        assert set(space.entry_keys) == {K.SDF_ARRAYS, K.SDF_CTRL, K.AL_BIGO}

    def test_row_of(self, trio):
        repo, a, b, c = trio
        space = incidence(repo, [a.id, b.id, c.id])
        assert space.row_of(c.id).sum() == 1

    def test_ontology_filter(self, fresh_repo):
        m = add(fresh_repo, "M", [K.SDF_ARRAYS, K.P_OPENMP])
        space = incidence(fresh_repo, [m.id], ontologies=["PDC12"])
        assert space.entry_keys == [K.P_OPENMP]

    def test_empty_materials(self, fresh_repo):
        space = incidence(fresh_repo, [])
        assert space.matrix.shape == (0, 0)


class TestMatrices:
    def test_shared_self_matrix_diagonal_is_set_size(self, trio):
        repo, a, b, c = trio
        space = incidence(repo, [a.id, b.id, c.id])
        shared = shared_item_matrix(space)
        assert np.allclose(np.diag(shared), [3, 2, 1])
        assert shared[0, 1] == 2
        assert shared[1, 2] == 0

    def test_cross_matrix_aligns_vocabularies(self, trio):
        repo, a, b, c = trio
        left = incidence(repo, [a.id])
        right = incidence(repo, [b.id, c.id])
        shared = shared_item_matrix(left, right)
        assert shared.shape == (1, 2)
        assert shared[0, 0] == 2  # A vs B
        assert shared[0, 1] == 1  # A vs C

    def test_jaccard_values(self, trio):
        repo, a, b, c = trio
        left = incidence(repo, [a.id])
        right = incidence(repo, [b.id, c.id])
        jac = jaccard_matrix(left, right)
        assert jac[0, 0] == pytest.approx(2 / 3)
        assert jac[0, 1] == pytest.approx(1 / 3)

    def test_jaccard_empty_sets_are_zero(self, fresh_repo):
        a = add(fresh_repo, "A", [])
        b = add(fresh_repo, "B", [])
        jac = jaccard_matrix(
            incidence(fresh_repo, [a.id]), incidence(fresh_repo, [b.id])
        )
        assert jac[0, 0] == 0.0


class TestGraph:
    def test_cross_graph_threshold(self, trio):
        repo, a, b, c = trio
        g = similarity_graph(repo, [a.id], [b.id, c.id], threshold=2)
        assert g.has_edge(a.id, b.id)
        assert not g.has_edge(a.id, c.id)
        assert g.number_of_nodes() == 3

    def test_edge_carries_shared_keys(self, trio):
        repo, a, b, c = trio
        g = similarity_graph(repo, [a.id], [b.id, c.id], threshold=2)
        data = g.get_edge_data(a.id, b.id)
        assert data["shared"] == 2
        assert set(data["shared_keys"]) == {K.SDF_ARRAYS, K.SDF_CTRL}

    def test_groups_and_titles_annotated(self, trio):
        repo, a, b, c = trio
        g = similarity_graph(
            repo, [a.id], [b.id, c.id],
            threshold=2, left_group="L", right_group="R",
        )
        assert g.nodes[a.id]["group"] == "L"
        assert g.nodes[c.id]["group"] == "R"
        assert g.nodes[a.id]["title"] == "A"

    def test_within_set_graph_excludes_self_pairs(self, trio):
        repo, a, b, c = trio
        g = similarity_graph(repo, [a.id, b.id, c.id], threshold=1)
        assert not any(u == v for u, v in g.edges())
        assert g.has_edge(a.id, b.id)
        assert g.has_edge(a.id, c.id)

    def test_threshold_validation(self, trio):
        repo, a, b, c = trio
        with pytest.raises(ValueError):
            similarity_graph(repo, [a.id], [b.id], threshold=0)

    def test_threshold_monotonicity(self, trio):
        repo, a, b, c = trio
        ids = [a.id, b.id, c.id]
        e1 = similarity_graph(repo, ids, threshold=1).number_of_edges()
        e2 = similarity_graph(repo, ids, threshold=2).number_of_edges()
        e3 = similarity_graph(repo, ids, threshold=3).number_of_edges()
        assert e1 >= e2 >= e3


class TestGraphHelpers:
    def test_isolated_materials(self, trio):
        repo, a, b, c = trio
        g = similarity_graph(
            repo, [a.id], [b.id, c.id],
            threshold=2, left_group="L", right_group="R",
        )
        assert isolated_materials(g) == [c.id]
        assert isolated_materials(g, "R") == [c.id]
        assert isolated_materials(g, "L") == []

    def test_clusters_sorted_largest_first(self, trio):
        repo, a, b, c = trio
        g = similarity_graph(repo, [a.id], [b.id, c.id], threshold=1)
        comps = clusters(g)
        assert len(comps) == 1
        assert comps[0] == {a.id, b.id, c.id}

    def test_edges_with_shared_keys_sorted(self, trio):
        repo, a, b, c = trio
        g = similarity_graph(repo, [a.id], [b.id, c.id], threshold=1)
        edges = edges_with_shared_keys(g)
        assert edges[0].shared >= edges[-1].shared
        assert edges[0].left_id < edges[0].right_id
