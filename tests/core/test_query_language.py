"""The facet query language."""

import pytest

from repro.core.material import CourseLevel, MaterialKind
from repro.core.query_language import QuerySyntaxError, parse_query
from repro.core.search import SearchEngine


class TestParsing:
    def test_plain_text(self):
        parsed = parse_query("monte carlo simulation")
        assert parsed.text == "monte carlo simulation"
        assert parsed.filters.languages == ()

    def test_language_facet(self):
        parsed = parse_query("language:Python sorting")
        assert parsed.filters.languages == ("Python",)
        assert parsed.text == "sorting"

    def test_level_facet(self):
        parsed = parse_query("level:cs1")
        assert parsed.filters.course_levels == (CourseLevel.CS1,)

    def test_kind_facet(self):
        parsed = parse_query("kind:lecture_slides")
        assert parsed.filters.kinds == (MaterialKind.LECTURE_SLIDES,)

    def test_collection_and_tag(self):
        parsed = parse_query("collection:peachy tag:sorting")
        assert parsed.filters.collections == ("peachy",)
        assert parsed.filters.tags == ("sorting",)

    def test_under_facet(self):
        parsed = parse_query("under:PDC12/PROG loops")
        assert parsed.filters.under == ("PDC12/PROG",)
        assert parsed.text == "loops"

    def test_year_single(self):
        assert parse_query("year:2015").filters.years == (2015, 2015)

    def test_year_range(self):
        assert parse_query("year:2010..2015").filters.years == (2010, 2015)

    def test_dataset_yes_no(self):
        assert parse_query("dataset:yes").filters.datasets_required is True
        assert parse_query("dataset:no").filters.datasets_required is False

    def test_multiple_values_accumulate(self):
        parsed = parse_query("language:python language:java")
        assert parsed.filters.languages == ("python", "java")

    def test_facets_interleave_with_text(self):
        parsed = parse_query("fire language:c simulation level:cs2")
        assert parsed.text == "fire simulation"
        assert parsed.filters.languages == ("c",)
        assert parsed.filters.course_levels == (CourseLevel.CS2,)


class TestErrors:
    def test_unknown_facet(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("langauge:python")  # typo must not silently pass

    def test_empty_value(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("language:")

    def test_bad_level(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("level:phd")

    def test_bad_kind(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("kind:podcast")

    def test_bad_year(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("year:twenty")

    def test_inverted_year_range(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("year:2018..2010")

    def test_bad_dataset_value(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("dataset:maybe")


class TestEndToEnd:
    def test_query_drives_search_engine(self, seeded_repo):
        engine = SearchEngine(seeded_repo)
        parsed = parse_query("collection:peachy under:PDC12/PROG fire")
        hits = engine.search(parsed.text, parsed.filters, limit=5)
        assert hits
        assert all(h.material.collection == "peachy" for h in hits)
        titles = [h.material.title for h in hits]
        assert any("Fire" in t for t in titles)

    def test_year_range_filters(self, seeded_repo):
        engine = SearchEngine(seeded_repo)
        parsed = parse_query("collection:nifty year:2003..2005")
        hits = engine.search(parsed.text, parsed.filters, limit=50)
        assert hits
        assert all(2003 <= h.material.year <= 2005 for h in hits)
