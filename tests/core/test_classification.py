"""ClassificationSet algebra and validation."""

import pytest

from repro.core.classification import (
    ClassificationItem,
    ClassificationSet,
    expand_to_ancestors,
    validate_against,
)
from repro.core.ontology import BloomLevel, NodeKind, Ontology


@pytest.fixture()
def onto():
    o = Ontology("T")
    o.add("T/A", "A", NodeKind.AREA)
    o.add("T/A/u", "u", NodeKind.UNIT, "T/A")
    o.add("T/A/u/t", "t", NodeKind.TOPIC, "T/A/u")
    o.add("T/A/u/t2", "t2", NodeKind.TOPIC, "T/A/u")
    o.validate()
    return o


class TestBasics:
    def test_add_and_has(self):
        cs = ClassificationSet()
        cs.add("T", "T/A/u/t")
        assert cs.has("T", "T/A/u/t")
        assert not cs.has("T", "T/A")
        assert len(cs) == 1
        assert bool(cs)

    def test_empty_set_is_falsy(self):
        assert not ClassificationSet()

    def test_add_with_bloom(self):
        cs = ClassificationSet()
        cs.add("T", "T/A/u/t", BloomLevel.APPLY)
        assert cs.bloom("T", "T/A/u/t") is BloomLevel.APPLY

    def test_re_add_overwrites_bloom(self):
        cs = ClassificationSet()
        cs.add("T", "T/A/u/t", BloomLevel.KNOW)
        cs.add("T", "T/A/u/t", BloomLevel.APPLY)
        assert len(cs) == 1
        assert cs.bloom("T", "T/A/u/t") is BloomLevel.APPLY

    def test_remove(self):
        cs = ClassificationSet()
        cs.add("T", "T/A/u/t")
        assert cs.remove("T", "T/A/u/t") is True
        assert cs.remove("T", "T/A/u/t") is False
        assert len(cs) == 0
        assert cs.ontologies() == []

    def test_items_sorted_and_round_trip(self):
        cs = ClassificationSet()
        cs.add("B", "B/x")
        cs.add("A", "A/y", BloomLevel.USAGE)
        items = cs.items()
        assert [i.ontology for i in items] == ["A", "B"]
        rebuilt = ClassificationSet.from_items(items)
        assert rebuilt.items() == items

    def test_item_str(self):
        assert str(ClassificationItem("T", "T/x")) == "T/x"
        assert str(ClassificationItem("T", "T/x", BloomLevel.APPLY)) == "T/x @apply"

    def test_keys_per_ontology(self):
        cs = ClassificationSet()
        cs.add("A", "A/1")
        cs.add("B", "B/1")
        assert cs.keys("A") == frozenset({"A/1"})
        assert cs.keys("C") == frozenset()


class TestSetAlgebra:
    def test_shared_with(self):
        a, b = ClassificationSet(), ClassificationSet()
        a.add("T", "T/x"); a.add("T", "T/y")
        b.add("T", "T/y"); b.add("T", "T/z")
        assert a.shared_with(b, "T") == frozenset({"T/y"})

    def test_shared_count_across_ontologies(self):
        a, b = ClassificationSet(), ClassificationSet()
        a.add("T", "T/x"); a.add("U", "U/x")
        b.add("T", "T/x"); b.add("U", "U/x"); b.add("U", "U/y")
        assert a.shared_count(b) == 2

    def test_jaccard(self):
        a, b = ClassificationSet(), ClassificationSet()
        a.add("T", "T/x"); a.add("T", "T/y")
        b.add("T", "T/y"); b.add("T", "T/z")
        assert a.jaccard(b) == pytest.approx(1 / 3)

    def test_jaccard_of_empty_sets(self):
        assert ClassificationSet().jaccard(ClassificationSet()) == 0.0

    def test_jaccard_symmetry(self):
        a, b = ClassificationSet(), ClassificationSet()
        a.add("T", "T/x")
        b.add("T", "T/x"); b.add("T", "T/y")
        assert a.jaccard(b) == b.jaccard(a)


class TestValidation:
    def test_valid_set(self, onto):
        cs = ClassificationSet()
        cs.add("T", "T/A/u/t")
        assert validate_against(cs, {"T": onto}) == []

    def test_unknown_ontology(self, onto):
        cs = ClassificationSet()
        cs.add("X", "X/whatever")
        problems = validate_against(cs, {"T": onto})
        assert any("unknown ontology" in p for p in problems)

    def test_unknown_key(self, onto):
        cs = ClassificationSet()
        cs.add("T", "T/A/u/ghost")
        problems = validate_against(cs, {"T": onto})
        assert any("unknown entry" in p for p in problems)


class TestAncestorExpansion:
    def test_expansion_adds_unit_and_area(self, onto):
        cs = ClassificationSet()
        cs.add("T", "T/A/u/t", BloomLevel.APPLY)
        expanded = expand_to_ancestors(cs, {"T": onto})
        assert expanded.keys("T") == frozenset({"T/A/u/t", "T/A/u", "T/A"})
        # original bloom preserved on the leaf, ancestors carry none
        assert expanded.bloom("T", "T/A/u/t") is BloomLevel.APPLY
        assert expanded.bloom("T", "T/A") is None

    def test_expansion_does_not_duplicate(self, onto):
        cs = ClassificationSet()
        cs.add("T", "T/A/u/t")
        cs.add("T", "T/A/u/t2")
        expanded = expand_to_ancestors(cs, {"T": onto})
        assert len(expanded.keys("T")) == 4

    def test_original_set_untouched(self, onto):
        cs = ClassificationSet()
        cs.add("T", "T/A/u/t")
        expand_to_ancestors(cs, {"T": onto})
        assert len(cs) == 1
