"""Coverage computation (Figure 2 machinery)."""

import pytest

from repro.core.classification import ClassificationSet
from repro.core.coverage import compare_coverage, compute_coverage
from repro.core.material import Material
from repro.corpus import keys as K


def add(repo, title, keys, collection="c"):
    cs = ClassificationSet()
    for key in keys:
        onto = key.split("/", 1)[0]
        cs.add(onto, key)
    return repo.add_material(
        Material(title=title, description="d", collection=collection), cs
    )


class TestCounts:
    def test_direct_counts(self, fresh_repo):
        add(fresh_repo, "A", [K.SDF_ARRAYS])
        add(fresh_repo, "B", [K.SDF_ARRAYS, K.SDF_CTRL])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        assert cov.direct_counts[K.SDF_ARRAYS] == 2
        assert cov.direct_counts[K.SDF_CTRL] == 1

    def test_rollup_deduplicates_materials(self, fresh_repo):
        # one material under two topics of the same unit counts once
        add(fresh_repo, "A", [K.SDF_ARRAYS, K.SDF_STRINGS])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        unit = "/".join(K.SDF_ARRAYS.split("/")[:-1])
        area = "/".join(K.SDF_ARRAYS.split("/")[:-2])
        assert cov.rollup_counts[unit] == 1
        assert cov.rollup_counts[area] == 1

    def test_rollup_counts_distinct_materials(self, fresh_repo):
        add(fresh_repo, "A", [K.SDF_ARRAYS])
        add(fresh_repo, "B", [K.SDF_STRINGS])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        unit = "/".join(K.SDF_ARRAYS.split("/")[:-1])
        assert cov.rollup_counts[unit] == 2

    def test_collection_filter(self, fresh_repo):
        add(fresh_repo, "A", [K.SDF_ARRAYS], collection="one")
        add(fresh_repo, "B", [K.SDF_CTRL], collection="two")
        cov = compute_coverage(fresh_repo, "CS13", collection="one")
        assert K.SDF_ARRAYS in cov.direct_counts
        assert K.SDF_CTRL not in cov.direct_counts
        assert cov.n_materials == 1

    def test_material_ids_filter(self, fresh_repo):
        a = add(fresh_repo, "A", [K.SDF_ARRAYS])
        add(fresh_repo, "B", [K.SDF_CTRL])
        cov = compute_coverage(fresh_repo, "CS13", material_ids=[a.id])
        assert K.SDF_CTRL not in cov.direct_counts
        assert cov.n_materials == 1

    def test_other_ontology_keys_ignored(self, fresh_repo):
        add(fresh_repo, "A", [K.SDF_ARRAYS, K.P_OPENMP])
        cov = compute_coverage(fresh_repo, "PDC12", collection="c")
        assert K.P_OPENMP in cov.direct_counts
        assert K.SDF_ARRAYS not in cov.direct_counts

    def test_empty_collection(self, fresh_repo):
        cov = compute_coverage(fresh_repo, "CS13", collection="ghost")
        assert cov.rollup_counts == {}
        assert cov.covered_material_ids == set()


class TestRankingHelpers:
    def test_area_ranking_descending(self, fresh_repo, cs13):
        add(fresh_repo, "A", [K.SDF_ARRAYS])
        add(fresh_repo, "B", [K.SDF_CTRL])
        add(fresh_repo, "C", [K.AL_BIGO])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        ranking = cov.area_ranking(cs13)
        assert ranking[0][0].code == "SDF"
        assert ranking[0][1] == 2
        assert ranking[1][0].code == "AL"
        counts = [n for _, n in ranking]
        assert counts == sorted(counts, reverse=True)

    def test_covered_and_uncovered_partition(self, fresh_repo, cs13):
        add(fresh_repo, "A", [K.SDF_ARRAYS])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        covered = {a.code for a in cov.covered_areas(cs13)}
        uncovered = {a.code for a in cov.uncovered_areas(cs13)}
        assert covered == {"SDF"}
        assert covered | uncovered == {a.code for a in cs13.areas()}

    def test_is_covered_and_count(self, fresh_repo):
        add(fresh_repo, "A", [K.SDF_ARRAYS])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        assert cov.is_covered(K.SDF_ARRAYS)
        assert cov.count(K.SDF_ARRAYS) == 1
        assert not cov.is_covered(K.AL_BIGO)
        assert cov.count(K.AL_BIGO) == 0

    def test_kind_breakdown_counts_entry_types(self, fresh_repo, cs13):
        from repro.core.ontology import NodeKind
        add(fresh_repo, "A", [K.SDF_ARRAYS, K.SDF_CTRL])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        breakdown = cov.kind_breakdown(cs13)
        assert breakdown == {NodeKind.TOPIC: 2}

    def test_kind_breakdown_on_seeded_corpus(self, seeded_repo, cs13):
        from repro.core.ontology import NodeKind
        cov = compute_coverage(seeded_repo, "CS13")
        breakdown = cov.kind_breakdown(cs13)
        # The reconstructed corpus classifies at topic granularity only —
        # the IV-A observation that outcome-level tagging needs tooling.
        assert breakdown.get(NodeKind.TOPIC, 0) > 50
        assert NodeKind.LEARNING_OUTCOME not in breakdown

    def test_coverage_ratio_within_subtree(self, fresh_repo, cs13):
        add(fresh_repo, "A", [K.SDF_ARRAYS])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        unit = "/".join(K.SDF_ARRAYS.split("/")[:-1])
        ratio = cov.coverage_ratio(cs13, within=unit)
        assert 0.0 < ratio < 1.0
        assert cov.coverage_ratio(cs13) < ratio


class TestTree:
    def test_pruned_tree_excludes_uncovered(self, fresh_repo, cs13):
        add(fresh_repo, "A", [K.SDF_ARRAYS])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        tree = cov.tree(cs13)
        assert [c.code for c in tree.children] == ["SDF"]

    def test_unpruned_tree_includes_all_areas(self, fresh_repo, cs13):
        add(fresh_repo, "A", [K.SDF_ARRAYS])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        tree = cov.tree(cs13, prune=False, max_depth=1)
        assert len(tree.children) == len(cs13.areas())

    def test_max_depth_limits_tree(self, fresh_repo, cs13):
        add(fresh_repo, "A", [K.SDF_ARRAYS])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        tree = cov.tree(cs13, max_depth=1)
        for child in tree.children:
            assert child.children == []

    def test_tree_counts_match_report(self, fresh_repo, cs13):
        add(fresh_repo, "A", [K.SDF_ARRAYS, K.AL_BIGO])
        add(fresh_repo, "B", [K.SDF_ARRAYS])
        cov = compute_coverage(fresh_repo, "CS13", collection="c")
        tree = cov.tree(cs13)
        by_code = {c.code: c.count for c in tree.children}
        assert by_code == {"SDF": 2, "AL": 1}
        assert tree.count == 2  # two distinct materials overall


class TestCompare:
    def test_compare_coverage_shape(self, fresh_repo, cs13):
        add(fresh_repo, "A", [K.SDF_ARRAYS], collection="x")
        add(fresh_repo, "B", [K.AL_BIGO], collection="y")
        reports = {
            "x": compute_coverage(fresh_repo, "CS13", collection="x"),
            "y": compute_coverage(fresh_repo, "CS13", collection="y"),
        }
        rows = compare_coverage(reports, cs13)
        assert [name for name, _ in rows] == ["x", "y"]
        x_top = rows[0][1][0]
        assert x_top == ("Software Development Fundamentals", 1)
