"""Material model behaviour."""

import pytest

from repro.core.material import (
    CourseLevel,
    Material,
    MaterialKind,
    normalize_authors,
)


class TestMaterial:
    def test_title_required(self):
        with pytest.raises(ValueError):
            Material(title="   ", description="x")

    def test_defaults(self):
        m = Material(title="T", description="d")
        assert m.kind is MaterialKind.ASSIGNMENT
        assert m.id is None
        assert m.authors == ()
        assert m.course_level is None

    def test_with_id_returns_new_instance(self):
        m = Material(title="T", description="d")
        m2 = m.with_id(7)
        assert m2.id == 7
        assert m.id is None
        assert m2.title == m.title

    def test_frozen(self):
        m = Material(title="T", description="d")
        with pytest.raises(Exception):
            m.title = "other"

    def test_text_concatenates_title_and_description(self):
        m = Material(title="Sorting", description="Quick sort lab")
        assert "Sorting" in m.text() and "Quick sort lab" in m.text()

    def test_summary_truncates(self):
        m = Material(title="T", description="word " * 50)
        line = m.summary(width=30)
        assert len(line) < 60
        assert line.startswith("[assignment] T — ")

    def test_summary_flattens_newlines(self):
        m = Material(title="T", description="a\nb")
        assert "\n" not in m.summary()


class TestEnums:
    def test_all_paper_material_kinds_exist(self):
        # Section I: assignments, lecture slides, exams, video lectures,
        # book chapters, course descriptions, demos
        for value in ("assignment", "lecture_slides", "exam", "video_lecture",
                      "book_chapter", "course_description", "demo"):
            assert MaterialKind(value)

    def test_course_levels(self):
        assert CourseLevel("cs0") and CourseLevel("cs1") and CourseLevel("cs2")


class TestNormalizeAuthors:
    def test_strips_and_collapses_whitespace(self):
        assert normalize_authors(["  Ada   Lovelace "]) == ("Ada Lovelace",)

    def test_drops_empties(self):
        assert normalize_authors(["", "  ", "Bob"]) == ("Bob",)

    def test_dedupes_case_insensitively_preserving_order(self):
        assert normalize_authors(["Ann", "ann", "Bob", "ANN"]) == ("Ann", "Bob")
