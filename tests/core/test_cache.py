"""The mutation-versioned analytics cache: correctness under churn.

The central invariant: a cached coverage/similarity answer must be
byte-equal to a fresh recomputation after ANY sequence of repository
mutations — classify, declassify, add_material, delete_material —
including aborted transactions, LRU evictions and version rollbacks.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cache as cache_mod
from repro.core.cache import AnalyticsCache, Memo, freeze
from repro.core.classification import ClassificationSet
from repro.core.coverage import compute_coverage
from repro.core.material import Material
from repro.core.ontology import NodeKind, Ontology
from repro.core.repository import Repository
from repro.core.similarity import similarity_graph


# --------------------------------------------------------------------- helpers

KEYS = (
    "T/A/t1", "T/A/t2", "T/A/t3",
    "T/B/t4", "T/B/t5", "T/B/t6",
)


def tiny_ontology() -> Ontology:
    onto = Ontology("T")
    onto.add("T/A", "Area A", NodeKind.AREA)
    onto.add("T/B", "Area B", NodeKind.AREA)
    for key in KEYS:
        area = "/".join(key.split("/")[:2])
        onto.add(key, f"Topic {key[-2:]}", NodeKind.TOPIC, area)
    return onto


def tiny_repo() -> Repository:
    repo = Repository()
    repo.add_ontology(tiny_ontology())
    return repo


def add(repo: Repository, title: str, keys, collection: str = "c") -> int:
    cs = ClassificationSet()
    for key in keys:
        cs.add("T", key)
    stored = repo.add_material(
        Material(title=title, description=f"about {title}", collection=collection),
        cs,
    )
    assert stored.id is not None
    return stored.id


def coverage_bytes(report) -> bytes:
    """Canonical byte serialization of a CoverageReport."""
    return json.dumps({
        "ontology": report.ontology,
        "n_materials": report.n_materials,
        "direct": sorted(report.direct_counts.items()),
        "rollup": sorted(report.rollup_counts.items()),
        "covered": sorted(report.covered_material_ids),
    }, sort_keys=True).encode()


def similarity_bytes(graph) -> bytes:
    """Canonical byte serialization of a similarity graph."""
    return json.dumps({
        "nodes": sorted(
            (n, d["group"], d["title"]) for n, d in graph.nodes(data=True)
        ),
        "edges": sorted(
            (min(u, v), max(u, v), d["shared"], sorted(d["shared_keys"]))
            for u, v, d in graph.edges(data=True)
        ),
    }, sort_keys=True).encode()


def fresh_coverage(repo: Repository, collection=None):
    """Ground truth: recompute with the cache switched off."""
    repo.cache.enabled = False
    try:
        return compute_coverage(repo, "T", collection=collection)
    finally:
        repo.cache.enabled = True


def fresh_similarity(repo: Repository, ids, threshold=1):
    repo.cache.enabled = False
    try:
        return similarity_graph(repo, ids, threshold=threshold)
    finally:
        repo.cache.enabled = True


# ---------------------------------------------------------- AnalyticsCache unit


class TestAnalyticsCache:
    def test_hit_after_miss(self, bare_repo):
        cache = bare_repo.cache
        calls = []
        compute = lambda: calls.append(1) or 42
        for _ in range(3):
            assert cache.get_or_compute("f", (1,), ("materials",), compute) == 42
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2

    def test_mutation_invalidates(self, bare_repo):
        cache = bare_repo.cache
        values = iter(["old", "new"])
        compute = lambda: next(values)
        assert cache.get_or_compute("f", (), ("materials",), compute) == "old"
        bare_repo.db.insert("materials", title="x")
        assert cache.get_or_compute("f", (), ("materials",), compute) == "new"
        assert cache.stats.invalidations == 1

    def test_unrelated_table_mutation_keeps_entry(self, bare_repo):
        cache = bare_repo.cache
        assert cache.get_or_compute("f", (), ("tags",), lambda: "v") == "v"
        bare_repo.db.insert("materials", title="x")  # not a dependency
        assert cache.get_or_compute(
            "f", (), ("tags",), lambda: pytest.fail("should be cached")
        ) == "v"

    def test_lru_eviction_bound(self, bare_repo):
        cache = AnalyticsCache(bare_repo.db, maxsize=2)
        for i in range(5):
            cache.get_or_compute("f", (i,), ("materials",), lambda i=i: i)
        assert len(cache) == 2
        assert cache.stats.evictions == 3
        # Evicted keys recompute (still correct), surviving keys hit.
        assert cache.get_or_compute("f", (0,), ("materials",), lambda: 0) == 0
        assert cache.stats.hits == 0

    def test_lru_recency_order(self, bare_repo):
        cache = AnalyticsCache(bare_repo.db, maxsize=2)
        cache.get_or_compute("f", (1,), (), lambda: 1)
        cache.get_or_compute("f", (2,), (), lambda: 2)
        cache.get_or_compute("f", (1,), (), lambda: 1)      # refresh key 1
        cache.get_or_compute("f", (3,), (), lambda: 3)      # evicts key 2
        assert ("f", freeze((2,))) not in cache.keys()
        assert ("f", freeze((1,))) in cache.keys()

    def test_transaction_bypass(self, bare_repo):
        cache = bare_repo.cache
        with bare_repo.db.transaction():
            cache.get_or_compute("f", (), ("materials",), lambda: "in-tx")
        assert cache.stats.bypasses == 1
        assert len(cache) == 0  # nothing stored from inside the transaction

    def test_copy_protects_cached_value(self, bare_repo):
        cache = bare_repo.cache
        first = cache.get_or_compute("f", (), (), lambda: [1, 2], copy=list)
        first.append(3)
        second = cache.get_or_compute(
            "f", (), (), lambda: pytest.fail("cached"), copy=list
        )
        assert second == [1, 2]

    def test_global_disable(self, bare_repo):
        cache = bare_repo.cache
        cache_mod.set_global_enabled(False)
        try:
            calls = []
            for _ in range(2):
                cache.get_or_compute("f", (), (), lambda: calls.append(1))
            assert len(calls) == 2
            assert cache.stats.bypasses == 2
        finally:
            cache_mod.reset_global_enabled()
        assert cache_mod.global_enabled()  # env default is "on" in tests

    def test_env_flag_parsing(self, monkeypatch):
        for raw in ("off", "0", "false", "NO", " Disabled "):
            monkeypatch.setenv(cache_mod.ENV_FLAG, raw)
            assert not cache_mod.env_enabled()
        for raw in ("on", "1", "yes", ""):
            monkeypatch.setenv(cache_mod.ENV_FLAG, raw)
            assert cache_mod.env_enabled()
        monkeypatch.delenv(cache_mod.ENV_FLAG)
        assert cache_mod.env_enabled()

    def test_freeze_handles_containers(self):
        assert freeze([1, [2, 3]]) == (1, (2, 3))
        assert freeze({"b": 2, "a": [1]}) == (("a", (1,)), ("b", 2))
        assert freeze({1, 2}) == frozenset({1, 2})
        assert hash(freeze({"a": [{"x": {1, 2}}]})) is not None

    def test_invalidate_by_name(self, bare_repo):
        cache = bare_repo.cache
        cache.get_or_compute("f", (1,), (), lambda: 1)
        cache.get_or_compute("f", (2,), (), lambda: 2)
        cache.get_or_compute("g", (), (), lambda: 3)
        assert cache.invalidate("f") == 2
        assert len(cache) == 1


class TestMemo:
    def test_memo_uses_owner_cache(self):
        class Thing:
            def __init__(self, repo):
                self.cache = repo.cache
                self.calls = 0

            @Memo("materials")
            def answer(self, x):
                self.calls += 1
                return x * 2

        repo = Repository()
        thing = Thing(repo)
        assert thing.answer(21) == 42
        assert thing.answer(21) == 42
        assert thing.calls == 1
        repo.db.insert("materials", title="x")
        assert thing.answer(21) == 42
        assert thing.calls == 2

    def test_memo_without_cache_falls_through(self):
        class Bare:
            @Memo("materials")
            def answer(self):
                return 7

        assert Bare().answer() == 7


# ------------------------------------------------------------ version semantics


class TestVersionSemantics:
    def test_classify_bumps_repository_version(self):
        repo = tiny_repo()
        mid = add(repo, "m1", [KEYS[0]])
        v = repo.version
        repo.classify(mid, "T", KEYS[1])
        assert repo.version > v

    def test_declassify_bumps_only_when_removing(self):
        repo = tiny_repo()
        mid = add(repo, "m1", [KEYS[0]])
        v = repo.version
        assert repo.declassify(mid, KEYS[0])
        assert repo.version > v
        v = repo.version
        assert not repo.declassify(mid, KEYS[0])  # nothing to remove
        assert repo.version == v

    def test_rollback_restores_version(self):
        repo = tiny_repo()
        mid = add(repo, "m1", [KEYS[0]])
        v = repo.version
        with pytest.raises(RuntimeError):
            with repo.db.transaction():
                repo.classify(mid, "T", KEYS[1])
                assert repo.version > v
                raise RuntimeError("abort")
        assert repo.version == v

    def test_aborted_transaction_cannot_poison_cache(self):
        """The stale-cache trap: an aborted mutation re-uses version
        numbers, so values computed mid-transaction must never be stored."""
        repo = tiny_repo()
        mid = add(repo, "m1", [KEYS[0]])
        baseline = coverage_bytes(compute_coverage(repo, "T", collection="c"))
        with pytest.raises(RuntimeError):
            with repo.db.transaction():
                repo.classify(mid, "T", KEYS[1])
                # A read inside the transaction sees the uncommitted state…
                inside = compute_coverage(repo, "T", collection="c")
                assert coverage_bytes(inside) != baseline
                raise RuntimeError("abort")
        # …but afterwards the cache still serves the pre-transaction truth,
        assert coverage_bytes(compute_coverage(repo, "T", collection="c")) == baseline
        # and a *different* committed mutation at the re-used version number
        # is picked up rather than shadowed by the aborted one.
        repo.classify(mid, "T", KEYS[2])
        after = compute_coverage(repo, "T", collection="c")
        assert coverage_bytes(after) == coverage_bytes(fresh_coverage(repo, "c"))
        assert KEYS[2] in after.direct_counts
        assert KEYS[1] not in after.direct_counts

    def test_stats_reports_version_and_cache_counters(self):
        repo = tiny_repo()
        add(repo, "m1", [KEYS[0]])
        compute_coverage(repo, "T", collection="c")
        compute_coverage(repo, "T", collection="c")
        stats = repo.stats()
        assert stats["version"] == repo.version > 0
        assert stats["cache_hits"] >= 1
        assert stats["cache_misses"] >= 1
        assert stats["cache_entries"] >= 1


# -------------------------------------------------------- cached == recomputed


class TestCachedEqualsFresh:
    def test_coverage_hit_is_byte_equal(self):
        repo = tiny_repo()
        add(repo, "m1", [KEYS[0], KEYS[1]])
        add(repo, "m2", [KEYS[1], KEYS[3]])
        first = compute_coverage(repo, "T", collection="c")
        again = compute_coverage(repo, "T", collection="c")
        assert again is first  # shared object on hit
        assert coverage_bytes(first) == coverage_bytes(fresh_coverage(repo, "c"))

    def test_coverage_after_each_mutation_kind(self):
        repo = tiny_repo()
        m1 = add(repo, "m1", [KEYS[0]])
        m2 = add(repo, "m2", [KEYS[3]])
        mutations = [
            lambda: repo.classify(m1, "T", KEYS[4]),
            lambda: repo.declassify(m2, KEYS[3]),
            lambda: add(repo, "m3", [KEYS[5]]),
            lambda: repo.delete_material(m1),
        ]
        for mutate in mutations:
            compute_coverage(repo, "T", collection="c")  # warm the cache
            mutate()
            cached = compute_coverage(repo, "T", collection="c")
            assert coverage_bytes(cached) == coverage_bytes(fresh_coverage(repo, "c"))

    def test_similarity_hit_matches_fresh(self):
        repo = tiny_repo()
        ids = [
            add(repo, "m1", [KEYS[0], KEYS[1]]),
            add(repo, "m2", [KEYS[0], KEYS[1]]),
            add(repo, "m3", [KEYS[4]]),
        ]
        first = similarity_graph(repo, ids, threshold=1)
        again = similarity_graph(repo, ids, threshold=1)
        assert similarity_bytes(first) == similarity_bytes(again)
        assert similarity_bytes(first) == similarity_bytes(
            fresh_similarity(repo, ids)
        )
        # Copies are private: annotating one must not leak into the next.
        first.add_node(99999, group="rogue", title="rogue")
        assert 99999 not in similarity_graph(repo, ids, threshold=1)

    def test_lru_eviction_preserves_correctness(self):
        repo = tiny_repo()
        repo.cache = AnalyticsCache(repo.db, maxsize=1)
        add(repo, "a1", [KEYS[0]], collection="one")
        add(repo, "b1", [KEYS[3]], collection="two")
        for _ in range(3):
            for coll in ("one", "two"):  # each lookup evicts the other
                cached = compute_coverage(repo, "T", collection=coll)
                assert coverage_bytes(cached) == coverage_bytes(
                    fresh_coverage(repo, coll)
                )
        assert repo.cache.stats.evictions > 0

    def test_search_index_follows_version(self):
        repo = tiny_repo()
        add(repo, "quantum sieve", [KEYS[0]])
        assert any(
            "quantum" in h.material.title for h in repo.search("quantum sieve")
        )
        mid = add(repo, "parallel mandelbrot", [KEYS[1]])
        hits = repo.search("parallel mandelbrot")
        assert any(h.material.id == mid for h in hits)
        # In-place rename (no row-count change) must also be picked up.
        repo.update_material(mid, title="distributed raytracer")
        hits = repo.search("distributed raytracer")
        assert any(h.material.id == mid for h in hits)

    def test_recommender_memoized_until_mutation(self):
        repo = tiny_repo()
        add(repo, "m1", [KEYS[0], KEYS[1]])
        add(repo, "m2", [KEYS[0], KEYS[2]])
        first = repo.recommender()
        assert repo.recommender() is first
        add(repo, "m3", [KEYS[3]])
        assert repo.recommender() is not first


# ----------------------------------------------------------- the property test


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "delete", "classify", "declassify"]),
        st.integers(0, 9),
        st.integers(0, len(KEYS) - 1),
    ),
    min_size=1,
    max_size=18,
)


@settings(max_examples=40, deadline=None)
@given(ops_strategy)
def test_cached_analytics_equal_fresh_under_random_mutations(ops):
    """For ANY mutation sequence, the cached coverage and similarity
    answers stay byte-equal to a fresh recomputation at every step."""
    repo = tiny_repo()
    live: list[int] = []
    counter = 0
    for op, pick, key_idx in ops:
        if op == "add":
            counter += 1
            live.append(
                add(repo, f"m{counter}", [KEYS[key_idx]], collection="c")
            )
        elif op == "delete" and live:
            repo.delete_material(live.pop(pick % len(live)))
        elif op == "classify" and live:
            repo.classify(live[pick % len(live)], "T", KEYS[key_idx])
        elif op == "declassify" and live:
            repo.declassify(live[pick % len(live)], KEYS[key_idx])

        cached_cov = compute_coverage(repo, "T", collection="c")
        assert coverage_bytes(cached_cov) == coverage_bytes(
            fresh_coverage(repo, "c")
        )
        if live:
            cached_sim = similarity_graph(repo, list(live), threshold=1)
            assert similarity_bytes(cached_sim) == similarity_bytes(
                fresh_similarity(repo, list(live))
            )
    # The loop above exercises hits (consecutive reads without mutation
    # happen whenever an op was a no-op) and invalidations; the cache must
    # have actually been used, not silently bypassed.
    assert repo.cache.stats.lookups > 0
