"""Classification recommenders (future-work feature, implemented)."""

import pytest

from repro.core.recommend import (
    CooccurrenceRecommender,
    HybridRecommender,
    TextKnnRecommender,
    TextNbRecommender,
    evaluate_knn_loo_fast,
    evaluate_leave_one_out,
)
from repro.corpus import keys as K


class TestTextKnn:
    def test_recommends_pdc_keys_for_pdc_text(self, seeded_repo):
        rec = TextKnnRecommender(seeded_repo).fit()
        suggestions = rec.recommend(
            "Parallelize loops over an image with OpenMP pragmas and "
            "measure speedup and efficiency", top=12,
        )
        keys = {s.key for s in suggestions}
        assert keys, "expected at least one suggestion"
        assert any(k.startswith("PDC12/") or "/PD/" in k for k in keys)

    def test_scores_sorted_descending(self, seeded_repo):
        rec = TextKnnRecommender(seeded_repo).fit()
        suggestions = rec.recommend("sorting with divide and conquer", top=10)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_fit_on_empty_repo_raises(self, fresh_repo):
        with pytest.raises(ValueError):
            TextKnnRecommender(fresh_repo).fit()

    def test_exclusion_removes_training_signal(self, seeded_repo):
        # excluding every material must make fit impossible
        all_ids = {m.id for m in seeded_repo.materials()}
        with pytest.raises(ValueError):
            TextKnnRecommender(seeded_repo).fit(exclude=all_ids)


class TestTextNb:
    def test_recommends_something_plausible(self, seeded_repo):
        rec = TextNbRecommender(seeded_repo).fit()
        suggestions = rec.recommend(
            "message passing with MPI scatter gather collectives", top=10
        )
        assert suggestions
        assert all(0.0 < s.score <= 1.0 for s in suggestions)

    def test_min_label_count_filters_rare_labels(self, seeded_repo):
        rec = TextNbRecommender(seeded_repo, min_label_count=3).fit()
        assert rec._nb is not None
        # every modeled label is used by >= 3 materials
        for label in rec._nb.labels_:
            assert len(seeded_repo.materials_with(label)) >= 3


class TestCooccurrence:
    def test_arrays_implies_control_structures(self, seeded_repo):
        # the Figure 3 cluster makes these strongly co-occurring
        rec = CooccurrenceRecommender(seeded_repo).fit()
        suggestions = rec.recommend([K.SDF_ARRAYS], top=20, min_score=0.0)
        assert any(s.key == K.SDF_CTRL for s in suggestions)

    def test_never_suggests_selected(self, seeded_repo):
        rec = CooccurrenceRecommender(seeded_repo).fit()
        suggestions = rec.recommend([K.SDF_ARRAYS, K.SDF_CTRL], top=50,
                                    min_score=0.0)
        keys = {s.key for s in suggestions}
        assert K.SDF_ARRAYS not in keys
        assert K.SDF_CTRL not in keys

    def test_unknown_selection_yields_nothing(self, seeded_repo):
        rec = CooccurrenceRecommender(seeded_repo).fit()
        assert rec.recommend(["CS13/NOT/A/KEY"]) == []

    def test_openmp_implies_parallel_loops(self, seeded_repo):
        rec = CooccurrenceRecommender(seeded_repo).fit()
        suggestions = rec.recommend([K.P_OPENMP], top=20, min_score=0.0)
        assert any(s.key == K.P_PARLOOPS for s in suggestions)


class TestHybrid:
    def test_blends_both_sources(self, seeded_repo):
        rec = HybridRecommender(seeded_repo).fit()
        suggestions = rec.recommend(
            "simulate fire spreading on a grid of cells in parallel",
            selected=[K.SDF_ARRAYS],
            top=10,
        )
        assert suggestions
        assert all(s.source == "hybrid" for s in suggestions)
        assert all(s.key != K.SDF_ARRAYS for s in suggestions)

    def test_weight_validation(self, seeded_repo):
        with pytest.raises(ValueError):
            HybridRecommender(seeded_repo, text_weight=1.5)


class TestEvaluation:
    def test_leave_one_out_reports_metrics(self, seeded_repo):
        result = evaluate_leave_one_out(
            seeded_repo,
            lambda exclude: TextKnnRecommender(seeded_repo).fit(exclude=exclude),
            top=10,
            limit=5,
        )
        assert set(result) == {"precision", "recall", "f1", "n"}
        assert 0.0 <= result["precision"] <= 1.0
        assert 0.0 <= result["recall"] <= 1.0
        assert result["n"] == 5.0

    def test_fast_loo_matches_refit_loo(self, seeded_repo):
        """The vectorised LOO must agree with the refit-per-material LOO
        (the only modelling difference is corpus-level IDF)."""
        fast = evaluate_knn_loo_fast(seeded_repo, top=10)
        slow = evaluate_leave_one_out(
            seeded_repo,
            lambda ex: TextKnnRecommender(seeded_repo).fit(exclude=ex),
            top=10, limit=None,
        )
        assert fast["n"] == slow["n"]
        assert abs(fast["precision"] - slow["precision"]) < 0.03
        assert abs(fast["recall"] - slow["recall"]) < 0.03

    def test_fast_loo_on_empty_repo_raises(self, fresh_repo):
        with pytest.raises(ValueError):
            evaluate_knn_loo_fast(fresh_repo)

    def test_knn_beats_chance_on_seeded_corpus(self, seeded_repo):
        """With ~300 labels, random top-10 precision is ~3%; the text
        recommender should do far better on the real corpus."""
        result = evaluate_leave_one_out(
            seeded_repo,
            lambda exclude: TextKnnRecommender(seeded_repo).fit(exclude=exclude),
            top=10,
            limit=20,
        )
        assert result["precision"] > 0.10
