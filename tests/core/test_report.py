"""Class coverage reports (Section IV-B)."""

import pytest

from repro.core.report import class_report, coverage_summary_table


class TestClassReport:
    def test_itcs_pdc12_report_shape(self, seeded_repo):
        report = class_report(seeded_repo, "itcs3145", "PDC12")
        assert report.n_materials == 21
        labels = [a.label for a in report.ranked_areas]
        assert labels[0] == "Programming"
        assert labels[1] == "Algorithm"

    def test_itcs_pdc12_architecture_is_light(self, seeded_repo):
        report = class_report(seeded_repo, "itcs3145", "PDC12",
                              light_threshold=2)
        light = {a.label for a in report.lightly_touched}
        assert "Architecture" in light
        assert "Cross Cutting and Advanced" in light

    def test_untouched_areas_for_itcs_cs13(self, seeded_repo):
        report = class_report(seeded_repo, "itcs3145", "CS13")
        untouched = set(report.untouched_areas)
        for label in (
            "Human-Computer Interaction",
            "Social Issues and Professional Practice",
            "Information Assurance and Security",
            "Platform-Based Development",
            "Graphics and Visualization",
            "Intelligent Systems",
        ):
            assert label in untouched

    def test_core_holes_listed(self, seeded_repo):
        report = class_report(seeded_repo, "itcs3145", "PDC12")
        # The class does not cover PDC12 tools (core entry) — the paper's
        # "omission of the instructor".
        assert any("Tools" in h for h in report.core_holes)

    def test_format_is_readable(self, seeded_repo):
        report = class_report(seeded_repo, "itcs3145", "PDC12")
        text = report.format()
        assert "Coverage of 'itcs3145' against PDC12" in text
        assert "Programming" in text
        assert "Untouched areas:" not in text or "Architecture" not in text.split(
            "Untouched areas:"
        )[1].split("Core topics")[0]

    def test_units_ranked_within_area(self, seeded_repo):
        report = class_report(seeded_repo, "itcs3145", "PDC12")
        prog = report.ranked_areas[0]
        counts = [c for _, c in prog.units_covered]
        assert counts == sorted(counts, reverse=True)


class TestSummaryTable:
    def test_rows_per_collection(self, seeded_repo):
        rows = coverage_summary_table(
            seeded_repo, ["nifty", "peachy", "itcs3145"], "CS13"
        )
        assert [r["collection"] for r in rows] == ["nifty", "peachy", "itcs3145"]
        nifty = rows[0]
        assert nifty["materials"] == 65
        assert nifty["top_area"] == "Software Development Fundamentals"
        peachy = rows[1]
        assert peachy["materials"] == 11
        assert peachy["top_area"] == "Parallel and Distributed Computing"

    def test_empty_collection_row(self, seeded_repo):
        rows = coverage_summary_table(seeded_repo, ["ghost"], "CS13")
        assert rows[0]["materials"] == 0
        assert rows[0]["top_area"] == "-"
