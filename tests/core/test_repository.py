"""Repository facade: CRUD, classification links, roles, curation."""

import pytest

from repro.core.classification import ClassificationSet
from repro.core.material import Material, MaterialKind
from repro.core.ontology import BloomLevel
from repro.core.repository import PermissionError_, Role, SubmissionStatus
from repro.corpus import keys as K


def simple_material(**overrides):
    defaults = dict(
        title="Sorting lab",
        description="Implement quicksort",
        authors=("Ada", "Bob"),
        tags=("sorting",),
        languages=("Python",),
        datasets=("numbers",),
        collection="demo",
        year=2018,
    )
    defaults.update(overrides)
    return Material(**defaults)


class TestMaterialCrud:
    def test_add_assigns_id(self, fresh_repo):
        stored = fresh_repo.add_material(simple_material())
        assert stored.id == 1

    def test_round_trip_preserves_relations(self, fresh_repo):
        stored = fresh_repo.add_material(simple_material())
        fetched = fresh_repo.get_material(stored.id)
        assert fetched.authors == ("Ada", "Bob")
        assert fetched.tags == ("sorting",)
        assert fetched.languages == ("Python",)
        assert fetched.datasets == ("numbers",)
        assert fetched.collection == "demo"
        assert fetched.year == 2018

    def test_named_entities_are_shared(self, fresh_repo):
        fresh_repo.add_material(simple_material(title="A"))
        fresh_repo.add_material(simple_material(title="B"))
        assert len(fresh_repo.db.table("authors")) == 2  # Ada, Bob once each

    def test_materials_by_collection(self, fresh_repo):
        fresh_repo.add_material(simple_material(title="A"))
        fresh_repo.add_material(simple_material(title="B", collection="other"))
        assert [m.title for m in fresh_repo.materials("demo")] == ["A"]
        assert fresh_repo.material_count("demo") == 1
        assert fresh_repo.material_count() == 2
        assert fresh_repo.collections() == ["demo", "other"]

    def test_update_material(self, fresh_repo):
        stored = fresh_repo.add_material(simple_material())
        updated = fresh_repo.update_material(stored.id, title="Renamed")
        assert updated.title == "Renamed"

    def test_update_rejects_unknown_fields(self, fresh_repo):
        stored = fresh_repo.add_material(simple_material())
        with pytest.raises(ValueError):
            fresh_repo.update_material(stored.id, kind="exam")

    def test_delete_material_cascades_links(self, fresh_repo):
        cs = ClassificationSet()
        cs.add("CS13", K.SDF_ARRAYS)
        stored = fresh_repo.add_material(simple_material(), cs)
        fresh_repo.delete_material(stored.id)
        assert fresh_repo.material_count() == 0
        assert len(fresh_repo.material_classifications) == 0


class TestClassification:
    def test_classify_and_read_back(self, fresh_repo):
        stored = fresh_repo.add_material(simple_material())
        fresh_repo.classify(stored.id, "CS13", K.SDF_ARRAYS, bloom=BloomLevel.USAGE)
        cs = fresh_repo.classification_of(stored.id)
        assert cs.has("CS13", K.SDF_ARRAYS)
        assert cs.bloom("CS13", K.SDF_ARRAYS) is BloomLevel.USAGE

    def test_classify_unknown_key(self, fresh_repo):
        stored = fresh_repo.add_material(simple_material())
        with pytest.raises(KeyError):
            fresh_repo.classify(stored.id, "CS13", "CS13/NOPE")

    def test_classify_unknown_ontology(self, fresh_repo):
        stored = fresh_repo.add_material(simple_material())
        with pytest.raises(KeyError):
            fresh_repo.classify(stored.id, "XX", "XX/a")

    def test_classify_is_idempotent(self, fresh_repo):
        stored = fresh_repo.add_material(simple_material())
        fresh_repo.classify(stored.id, "CS13", K.SDF_ARRAYS)
        fresh_repo.classify(stored.id, "CS13", K.SDF_ARRAYS)
        assert len(fresh_repo.classification_of(stored.id)) == 1

    def test_declassify(self, fresh_repo):
        stored = fresh_repo.add_material(simple_material())
        fresh_repo.classify(stored.id, "CS13", K.SDF_ARRAYS)
        assert fresh_repo.declassify(stored.id, K.SDF_ARRAYS) is True
        assert fresh_repo.declassify(stored.id, K.SDF_ARRAYS) is False
        assert len(fresh_repo.classification_of(stored.id)) == 0

    def test_add_material_with_invalid_classification_rolls_back(self, fresh_repo):
        cs = ClassificationSet()
        cs.add("CS13", "CS13/NOT/REAL")
        with pytest.raises(ValueError):
            fresh_repo.add_material(simple_material(), cs)
        assert fresh_repo.material_count() == 0

    def test_materials_with(self, fresh_repo):
        cs = ClassificationSet()
        cs.add("CS13", K.SDF_ARRAYS)
        a = fresh_repo.add_material(simple_material(title="A"), cs)
        fresh_repo.add_material(simple_material(title="B"))
        hits = fresh_repo.materials_with(K.SDF_ARRAYS)
        assert [m.id for m in hits] == [a.id]
        assert fresh_repo.materials_with("CS13/NOPE") == []

    def test_classification_pairs_filters_by_collection(self, fresh_repo):
        cs = ClassificationSet(); cs.add("CS13", K.SDF_ARRAYS)
        fresh_repo.add_material(simple_material(title="A"), cs)
        fresh_repo.add_material(
            simple_material(title="B", collection="other"), cs
        )
        pairs = fresh_repo.classification_pairs("demo")
        assert len(pairs) == 1


class TestOntologyMirroring:
    def test_entries_mirrored_relationally(self, fresh_repo):
        count = fresh_repo.db.table("ontology_entries").count(ontology="PDC12")
        assert count == len(fresh_repo.ontology("PDC12"))

    def test_double_load_rejected(self, fresh_repo):
        from repro.ontologies import load
        with pytest.raises(ValueError):
            fresh_repo.add_ontology(load("PDC12"))

    def test_entry_id_lookup(self, fresh_repo):
        eid = fresh_repo.entry_id(K.SDF_ARRAYS)
        row = fresh_repo.db.table("ontology_entries").get(eid)
        assert row["label"] == "Arrays"
        with pytest.raises(KeyError):
            fresh_repo.entry_id("CS13/NOPE")


class TestRolesAndCuration:
    def test_submission_flow_approved(self, fresh_repo):
        editor = fresh_repo.add_user("ed", Role.EDITOR)
        submitter = fresh_repo.add_user("sue", Role.SUBMITTER)
        sid = fresh_repo.submit_material(
            simple_material(), None, submitted_by=submitter
        )
        assert len(fresh_repo.pending_submissions()) == 1
        status = fresh_repo.review_submission(sid, editor=editor, approve=True)
        assert status is SubmissionStatus.APPROVED
        assert fresh_repo.pending_submissions() == []
        assert fresh_repo.material_count() == 1
        assert fresh_repo.approved_material_ids() != set()

    def test_submission_flow_rejected_deletes_material(self, fresh_repo):
        editor = fresh_repo.add_user("ed", Role.EDITOR)
        submitter = fresh_repo.add_user("sue", Role.SUBMITTER)
        sid = fresh_repo.submit_material(
            simple_material(), None, submitted_by=submitter
        )
        fresh_repo.review_submission(sid, editor=editor, approve=False)
        assert fresh_repo.material_count() == 0

    def test_only_editors_review(self, fresh_repo):
        user = fresh_repo.add_user("u", Role.USER)
        submitter = fresh_repo.add_user("s", Role.SUBMITTER)
        sid = fresh_repo.submit_material(
            simple_material(), None, submitted_by=submitter
        )
        with pytest.raises(PermissionError_):
            fresh_repo.review_submission(sid, editor=user, approve=True)

    def test_double_review_rejected(self, fresh_repo):
        editor = fresh_repo.add_user("ed", Role.EDITOR)
        sid = fresh_repo.submit_material(
            simple_material(), None, submitted_by=editor
        )
        fresh_repo.review_submission(sid, editor=editor, approve=True)
        with pytest.raises(ValueError):
            fresh_repo.review_submission(sid, editor=editor, approve=True)

    def test_suggestion_add_flow(self, fresh_repo):
        editor = fresh_repo.add_user("ed", Role.EDITOR)
        user = fresh_repo.add_user("u", Role.USER)
        stored = fresh_repo.add_material(simple_material())
        sug = fresh_repo.suggest_classification(
            stored.id, K.SDF_ARRAYS, action="add", suggested_by=user
        )
        fresh_repo.review_suggestion(sug, editor=editor, approve=True)
        assert fresh_repo.classification_of(stored.id).has("CS13", K.SDF_ARRAYS)

    def test_suggestion_remove_flow(self, fresh_repo):
        editor = fresh_repo.add_user("ed", Role.EDITOR)
        user = fresh_repo.add_user("u", Role.USER)
        stored = fresh_repo.add_material(simple_material())
        fresh_repo.classify(stored.id, "CS13", K.SDF_ARRAYS)
        sug = fresh_repo.suggest_classification(
            stored.id, K.SDF_ARRAYS, action="remove", suggested_by=user
        )
        fresh_repo.review_suggestion(sug, editor=editor, approve=True)
        assert not fresh_repo.classification_of(stored.id).has("CS13", K.SDF_ARRAYS)

    def test_rejected_suggestion_changes_nothing(self, fresh_repo):
        editor = fresh_repo.add_user("ed", Role.EDITOR)
        user = fresh_repo.add_user("u", Role.USER)
        stored = fresh_repo.add_material(simple_material())
        sug = fresh_repo.suggest_classification(
            stored.id, K.SDF_ARRAYS, action="add", suggested_by=user
        )
        fresh_repo.review_suggestion(sug, editor=editor, approve=False)
        assert len(fresh_repo.classification_of(stored.id)) == 0

    def test_suggestion_validates_action(self, fresh_repo):
        user = fresh_repo.add_user("u", Role.USER)
        stored = fresh_repo.add_material(simple_material())
        with pytest.raises(ValueError):
            fresh_repo.suggest_classification(
                stored.id, K.SDF_ARRAYS, action="upsert", suggested_by=user
            )

    def test_stats_exposes_classification_links(self, fresh_repo):
        cs = ClassificationSet(); cs.add("CS13", K.SDF_ARRAYS)
        fresh_repo.add_material(simple_material(), cs)
        assert fresh_repo.stats()["classification_links"] == 1
