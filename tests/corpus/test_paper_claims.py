"""End-to-end reproduction of every distributional claim in the paper.

Each test cites the paper section whose claim it checks; together these
are the acceptance tests of the reproduction (DESIGN.md §4/§5).
"""

import pytest

from repro.core.coverage import compute_coverage
from repro.core.similarity import (
    clusters,
    isolated_materials,
    similarity_graph,
)
from repro.corpus import collection_ids
from repro.corpus.nifty import CLUSTER_TITLES as NIFTY_CLUSTER
from repro.corpus.peachy import CLUSTER_TITLES as PEACHY_CLUSTER


@pytest.fixture(scope="module")
def figure3(seeded_repo):
    nifty_ids = collection_ids(seeded_repo, "nifty")
    peachy_ids = collection_ids(seeded_repo, "peachy")
    graph = similarity_graph(
        seeded_repo, nifty_ids, peachy_ids, threshold=2,
        left_group="nifty", right_group="peachy",
    )
    return seeded_repo, graph, nifty_ids, peachy_ids


class TestCorpusSizes:
    """Section III-B: corpus composition."""

    def test_about_65_nifty(self, seeded_repo):
        assert seeded_repo.material_count("nifty") == 65

    def test_eleven_peachy(self, seeded_repo):
        assert seeded_repo.material_count("peachy") == 11

    def test_itcs_12_decks_9_assignments(self, seeded_repo):
        from repro.core.material import MaterialKind
        materials = seeded_repo.materials("itcs3145")
        decks = [m for m in materials if m.kind is MaterialKind.LECTURE_SLIDES]
        assignments = [m for m in materials if m.kind is MaterialKind.ASSIGNMENT]
        assert len(decks) == 12
        assert len(assignments) == 9

    def test_total_material_count(self, seeded_repo):
        assert seeded_repo.material_count() == 65 + 11 + 21


class TestNiftyClaims:
    """Section IV-C: the Nifty corpus profile."""

    def test_nifty_covers_no_pdc12_topics(self, seeded_repo):
        cov = compute_coverage(seeded_repo, "PDC12", collection="nifty")
        assert cov.rollup_counts == {}

    def test_nifty_covers_no_cs13_pd_area(self, seeded_repo):
        cov = compute_coverage(seeded_repo, "CS13", collection="nifty")
        assert cov.count("CS13/PD") == 0

    def test_nifty_area_ranking(self, seeded_repo, cs13):
        # "The most common area ... is Software Development Fundamental,
        # followed by Programming Language, Algorithms and Complexity, and
        # Computational Sciences."
        cov = compute_coverage(seeded_repo, "CS13", collection="nifty")
        top4 = [a.code for a, _ in cov.area_ranking(cs13)[:4]]
        assert top4 == ["SDF", "PL", "AL", "CN"]

    def test_nifty_commonly_touches_oop(self, seeded_repo):
        # "Nifty Assignments seem to commonly touch upon Object Oriented
        # Programming"
        cov = compute_coverage(seeded_repo, "CS13", collection="nifty")
        from repro.ontologies.cs2013 import unit_key
        oop = cov.count(unit_key("PL", "Object-Oriented Programming"))
        assert oop >= 15


class TestPeachyClaims:
    """Section IV-C: the Peachy corpus profile."""

    def test_every_peachy_has_pdc12_classification(self, seeded_repo):
        for mid in collection_ids(seeded_repo, "peachy"):
            cs = seeded_repo.classification_of(mid)
            assert cs.keys("PDC12"), seeded_repo.get_material(mid).title

    def test_peachy_top_area_is_pd(self, seeded_repo, cs13):
        # "the first CS13 curriculum topic of Peachy assignments is
        # Parallel and Distributed Computing"
        cov = compute_coverage(seeded_repo, "CS13", collection="peachy")
        ranking = cov.area_ranking(cs13)
        assert ranking[0][0].code == "PD"
        assert ranking[0][1] == 11  # every Peachy assignment

    def test_peachy_followed_by_systems_and_architecture(self, seeded_repo, cs13):
        cov = compute_coverage(seeded_repo, "CS13", collection="peachy")
        ranked = [a.code for a, n in cov.area_ranking(cs13) if n > 0]
        assert ranked[1] == "SF"
        assert ranked[2] == "AR"

    def test_peachy_sdf_is_low(self, seeded_repo, cs13):
        cov = compute_coverage(seeded_repo, "CS13", collection="peachy")
        counts = dict(
            (a.code, n) for a, n in cov.area_ranking(cs13)
        )
        assert counts["SDF"] < counts["SF"]
        assert counts["SDF"] < counts["AR"]

    def test_peachy_sdf_fpc_variables_and_loops(self, seeded_repo):
        # "topics in SDF covered by Peachy assignments relate to
        # Fundamental Programming Concepts (variable, loops)"
        from repro.corpus import keys as K
        cov = compute_coverage(seeded_repo, "CS13", collection="peachy")
        assert cov.count(K.SDF_VARS) > 0
        assert cov.count(K.SDF_CTRL) > 0
        # FPC shows more distinct topics than FDS (which is Arrays only)
        from repro.ontologies.cs2013 import unit_key
        fpc = unit_key("SDF", "Fundamental Programming Concepts")
        fds = unit_key("SDF", "Fundamental Data Structures")
        fpc_topics = sum(
            1 for k in cov.direct_counts if k.startswith(fpc + "/")
        )
        fds_topics = sum(
            1 for k in cov.direct_counts if k.startswith(fds + "/")
        )
        assert fds_topics == 1  # Arrays only
        assert fpc_topics > fds_topics

    def test_no_oop_in_peachy(self, seeded_repo):
        # "Object Oriented Programming ... does not appear in Peachy"
        from repro.ontologies.cs2013 import unit_key
        cov = compute_coverage(seeded_repo, "CS13", collection="peachy")
        assert cov.count(unit_key("PL", "Object-Oriented Programming")) == 0


class TestItcsClaims:
    """Section IV-B: coverage of ITCS 3145."""

    def test_pdc12_programming_then_algorithm(self, seeded_repo, pdc12):
        cov = compute_coverage(seeded_repo, "PDC12", collection="itcs3145")
        ranking = cov.area_ranking(pdc12)
        assert ranking[0][0].label == "Programming"
        assert ranking[1][0].label == "Algorithm"

    def test_pdc12_arch_and_crosscutting_mostly_untouched(self, seeded_repo, pdc12):
        cov = compute_coverage(seeded_repo, "PDC12", collection="itcs3145")
        counts = {a.label: n for a, n in cov.area_ranking(pdc12)}
        assert counts["Architecture"] <= 3
        assert counts["Cross Cutting and Advanced"] <= 3

    def test_no_tools_coverage(self, seeded_repo):
        # "the absence of tools from the class is an omission"
        from repro.ontologies.pdc12 import key_of
        cov = compute_coverage(seeded_repo, "PDC12", collection="itcs3145")
        assert cov.count(key_of("PROG", "Tools")) == 0

    def test_no_distributed_systems_coverage(self, seeded_repo):
        from repro.ontologies.pdc12 import key_of
        cov = compute_coverage(seeded_repo, "PDC12", collection="itcs3145")
        assert cov.count(key_of("CROSS", "Advanced topics: distributed systems")) == 0

    def test_cs13_pd_most_covered(self, seeded_repo, cs13):
        cov = compute_coverage(seeded_repo, "CS13", collection="itcs3145")
        ranking = cov.area_ranking(cs13)
        assert ranking[0][0].code == "PD"
        assert ranking[1][0].code == "AL"

    def test_cs13_cn_third_sdf_fourth(self, seeded_repo, cs13):
        cov = compute_coverage(seeded_repo, "CS13", collection="itcs3145")
        ranked = [a.code for a, n in cov.area_ranking(cs13) if n > 0]
        assert ranked[2] == "CN"
        assert ranked[3] == "SDF"

    def test_cs13_partial_os_pl_ar(self, seeded_repo, cs13):
        cov = compute_coverage(seeded_repo, "CS13", collection="itcs3145")
        for code in ("OS", "PL", "AR"):
            assert 0 < cov.count(f"CS13/{code}") < 21

    def test_cs13_untouched_areas(self, seeded_repo, cs13):
        # "Human Computer Interactions, Social Issues, Information
        # Assurance and Security, or Platform Based Development ...
        # Graphics and Visualization and Intelligent Systems"
        cov = compute_coverage(seeded_repo, "CS13", collection="itcs3145")
        for code in ("HCI", "SP", "IAS", "PBD", "GV", "IS"):
            assert cov.count(f"CS13/{code}") == 0, code

    def test_integration_assignment_checks_numerical_analysis(self, seeded_repo):
        # IV-A's Bloom-level example assignment
        from repro.corpus import keys as K
        hits = seeded_repo.materials_with(K.CN_NUM_INTEGRATION)
        titles = {m.title for m in hits}
        assert "Numerical Integration with the Rectangle Method" in titles

    def test_unit_test_scaffolding_appears_in_sdf(self, seeded_repo):
        # "assignments are scaffolded using unit tests which appears in
        # that category [SDF]"
        from repro.corpus import keys as K
        cov = compute_coverage(seeded_repo, "CS13", collection="itcs3145")
        assert cov.count(K.SDF_UNIT_TESTING) >= 3


class TestFigure3:
    """Section IV-D: the similarity graph."""

    def test_most_assignments_isolated(self, figure3):
        repo, graph, nifty_ids, peachy_ids = figure3
        assert len(isolated_materials(graph, "nifty")) == 65 - 6
        assert len(isolated_materials(graph, "peachy")) == 11 - 4

    def test_single_cluster_with_named_members(self, figure3):
        repo, graph, _, _ = figure3
        comps = clusters(graph)
        assert len(comps) == 1
        titles = {repo.get_material(m).title for m in comps[0]}
        assert titles == set(NIFTY_CLUSTER) | set(PEACHY_CLUSTER)

    def test_all_edges_share_arrays_and_control_structures(self, figure3):
        # "they essentially form a cluster because all the assignments
        # share the classifications Arrays and Conditional and iterative
        # control structure"
        repo, graph, _, _ = figure3
        cs13 = repo.ontology("CS13")
        for _, _, data in graph.edges(data=True):
            labels = {cs13.node(k).label for k in data["shared_keys"]}
            assert labels == {
                "Arrays", "Conditional and iterative control structures",
            }

    def test_cluster_is_complete_bipartite(self, figure3):
        repo, graph, _, _ = figure3
        assert graph.number_of_edges() == 6 * 4

    def test_isolated_peachy_are_systems_oriented(self, figure3):
        # "The Peachy assignments that do not match any other Nifty
        # assignments are the ones that are systems oriented, such as
        # dealing with middleware, or data races."
        repo, graph, _, _ = figure3
        titles = {
            repo.get_material(m).title
            for m in isolated_materials(graph, "peachy")
        }
        assert "Publish-Subscribe Middleware" in titles
        assert "Hunting Data Races in a Parallel Histogram" in titles
        assert not titles & set(PEACHY_CLUSTER)


class TestManualCost:
    def test_manual_classification_cost_recorded(self):
        # IV-A: "each item taking between 15-25 minutes"
        from repro.corpus import MANUAL_CLASSIFICATION_MINUTES
        assert MANUAL_CLASSIFICATION_MINUTES == (15, 25)
