"""Synthetic corpus generator."""

import pytest

from repro.core.ontology import NodeKind
from repro.corpus.generator import GeneratorConfig, generate_specs, seed_synthetic


class TestGenerateSpecs:
    def test_requested_count(self, cs13):
        pairs = generate_specs(cs13, GeneratorConfig(n_materials=25))
        assert len(pairs) == 25

    def test_deterministic_for_same_seed(self, cs13):
        config = GeneratorConfig(n_materials=10, seed=42)
        a = generate_specs(cs13, config)
        b = generate_specs(cs13, config)
        assert [m.title for m, _ in a] == [m.title for m, _ in b]
        assert [sorted(str(i) for i in cs.items()) for _, cs in a] == [
            sorted(str(i) for i in cs.items()) for _, cs in b
        ]

    def test_different_seeds_differ(self, cs13):
        a = generate_specs(cs13, GeneratorConfig(n_materials=10, seed=1))
        b = generate_specs(cs13, GeneratorConfig(n_materials=10, seed=2))
        assert [m.title for m, _ in a] != [m.title for m, _ in b]

    def test_classification_sizes_in_bounds(self, cs13):
        config = GeneratorConfig(n_materials=30, min_items=2, max_items=5)
        for _, cs in generate_specs(cs13, config):
            assert 2 <= len(cs) <= 5

    def test_all_keys_are_leafish(self, cs13):
        for _, cs in generate_specs(cs13, GeneratorConfig(n_materials=10)):
            for item in cs.items():
                node = cs13.node(item.key)
                assert node.kind in (NodeKind.TOPIC, NodeKind.LEARNING_OUTCOME)

    def test_descriptions_mention_classified_labels(self, cs13):
        material, cs = generate_specs(cs13, GeneratorConfig(n_materials=1))[0]
        assert material.description
        assert material.title.startswith("Synthetic 00000")


class TestSeedSynthetic:
    def test_inserts_into_repository(self, fresh_repo):
        ids = seed_synthetic(
            fresh_repo, "CS13", GeneratorConfig(n_materials=12)
        )
        assert len(ids) == 12
        assert fresh_repo.material_count("synthetic") == 12
        # every material is actually classified
        for mid in ids:
            assert len(fresh_repo.classification_of(mid)) >= 2

    def test_requires_loaded_ontology(self, bare_repo):
        with pytest.raises(KeyError):
            seed_synthetic(bare_repo, "CS13", GeneratorConfig(n_materials=1))

    def test_custom_collection_name(self, fresh_repo):
        seed_synthetic(
            fresh_repo, "PDC12",
            GeneratorConfig(n_materials=5, collection="bulk"),
        )
        assert fresh_repo.material_count("bulk") == 5
