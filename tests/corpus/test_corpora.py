"""Per-corpus structural sanity (beyond the paper-claim tests)."""

import pytest

from repro.core.material import CourseLevel, MaterialKind
from repro.corpus import itcs3145, nifty, peachy
from repro.corpus.base import Spec, check_unique_titles, load_into
from repro.ontologies import load


@pytest.fixture(scope="module")
def ontologies():
    return {"CS13": load("CS13"), "PDC12": load("PDC12")}


def all_keys_valid(specs, ontologies):
    for spec in specs:
        for key in spec.cs13:
            assert key in ontologies["CS13"], f"{spec.title}: {key}"
        for key in spec.pdc12:
            assert key in ontologies["PDC12"], f"{spec.title}: {key}"


class TestNifty:
    def test_spec_count(self):
        assert len(nifty.SPECS) == 65

    def test_unique_titles(self):
        check_unique_titles(nifty.SPECS)

    def test_keys_resolve(self, ontologies):
        all_keys_valid(nifty.SPECS, ontologies)

    def test_no_pdc12_anywhere(self):
        assert all(not s.pdc12 for s in nifty.SPECS)

    def test_years_within_2003_2018(self):
        # "We included all assignments from 2003 to 2018"
        for spec in nifty.SPECS:
            assert spec.year is not None and 2003 <= spec.year <= 2018

    def test_targeted_at_early_courses(self):
        for spec in nifty.SPECS:
            assert spec.level in (
                CourseLevel.CS0, CourseLevel.CS1, CourseLevel.CS2
            )

    def test_every_spec_is_classified(self):
        assert all(s.cs13 for s in nifty.SPECS)

    def test_cluster_titles_exist(self):
        titles = {s.title for s in nifty.SPECS}
        assert set(nifty.CLUSTER_TITLES) <= titles

    def test_cluster_pair_exclusivity(self):
        """Only the six named assignments carry the Arrays+control pair —
        the invariant the Figure 3 cluster depends on."""
        from repro.corpus import keys as K
        for spec in nifty.SPECS:
            has_pair = K.SDF_ARRAYS in spec.cs13 and K.SDF_CTRL in spec.cs13
            assert has_pair == (spec.title in nifty.CLUSTER_TITLES), spec.title

    def test_descriptions_are_substantial(self):
        for spec in nifty.SPECS:
            assert len(spec.description) > 60, spec.title


class TestPeachy:
    def test_spec_count(self):
        assert len(peachy.SPECS) == 11

    def test_keys_resolve(self, ontologies):
        all_keys_valid(peachy.SPECS, ontologies)

    def test_every_spec_has_both_ontologies(self):
        for spec in peachy.SPECS:
            assert spec.pdc12, spec.title
            assert spec.cs13, spec.title

    def test_cluster_specs_have_the_pair(self):
        from repro.corpus import keys as K
        for spec in peachy.SPECS:
            has_pair = K.SDF_ARRAYS in spec.cs13 and K.SDF_CTRL in spec.cs13
            assert has_pair == (spec.title in peachy.CLUSTER_TITLES), spec.title

    def test_parallel_languages_used(self):
        parallel = {"OpenMP", "MPI", "pthreads", "CUDA"}
        n = sum(1 for s in peachy.SPECS if set(s.languages) & parallel)
        assert n >= 8


class TestItcs:
    def test_composition(self):
        decks = [s for s in itcs3145.SPECS if s.kind is MaterialKind.LECTURE_SLIDES]
        assignments = [s for s in itcs3145.SPECS if s.kind is MaterialKind.ASSIGNMENT]
        assert (len(decks), len(assignments)) == (12, 9)

    def test_keys_resolve(self, ontologies):
        all_keys_valid(itcs3145.SPECS, ontologies)

    def test_authored_by_the_instructor(self):
        assert all(s.authors == ("Erik Saule",) for s in itcs3145.SPECS)

    def test_shared_and_distributed_memory_both_present(self):
        langs = {l for s in itcs3145.SPECS for l in s.languages}
        assert "pthreads" in langs and "OpenMP" in langs and "MPI" in langs


class TestSpecMechanics:
    def test_material_carries_collection(self):
        spec = nifty.SPECS[0]
        material = spec.material("nifty")
        assert material.collection == "nifty"
        assert material.title == spec.title

    def test_classification_split_by_ontology(self):
        spec = peachy.SPECS[0]
        cs = spec.classification()
        assert cs.keys("CS13") == frozenset(spec.cs13)
        assert cs.keys("PDC12") == frozenset(spec.pdc12)

    def test_check_unique_titles_rejects_duplicates(self):
        dup = (
            Spec("Same", "d1"),
            Spec("Same", "d2"),
        )
        with pytest.raises(ValueError):
            check_unique_titles(dup)

    def test_load_into_returns_ids_in_order(self, fresh_repo):
        ids = load_into(fresh_repo, nifty.SPECS[:3], "nifty")
        assert ids == [1, 2, 3]
        assert fresh_repo.material_count("nifty") == 3
