"""Scale-corpus synthesis: determinism, integrity, bounded memory.

``synthesize_database`` bypasses the engine's insert path, so nothing
checks its output *by construction* — these tests are that check: the
output must be byte-deterministic per seed, relationally consistent
(every link references a real material and a real ontology entry), and
generation plus lazy open must hold peak RSS far below the corpus size.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.corpus.generator import GeneratorConfig, synthesize_database
from repro.db import Database
from repro.db.pager import ROWS_PREFIX
from repro.obs.runtime import rss_bytes


def _digests(directory):
    rows = sorted(directory.glob(f"{ROWS_PREFIX}*.dat"))
    assert len(rows) == 1
    return (
        hashlib.sha256(rows[0].read_bytes()).hexdigest(),
        hashlib.sha256((directory / "snapshot.json").read_bytes()).hexdigest(),
    )


class TestDeterminism:
    def test_same_seed_is_byte_identical(self, tmp_path):
        config = GeneratorConfig(n_materials=500, seed=7)
        out_a = synthesize_database(tmp_path / "a", config)
        out_b = synthesize_database(tmp_path / "b", config)
        assert out_a["materials"] == out_b["materials"] == 500
        assert out_a["links"] == out_b["links"]
        assert _digests(tmp_path / "a") == _digests(tmp_path / "b")

    def test_different_seed_diverges(self, tmp_path):
        synthesize_database(tmp_path / "a", GeneratorConfig(
            n_materials=200, seed=1))
        synthesize_database(tmp_path / "b", GeneratorConfig(
            n_materials=200, seed=2))
        assert _digests(tmp_path / "a")[0] != _digests(tmp_path / "b")[0]

    def test_block_rows_do_not_change_the_corpus(self, tmp_path):
        # The storage block size shapes the file layout, not the data:
        # the same seed must sample the same rows either way.
        config = GeneratorConfig(n_materials=300, seed=11)
        synthesize_database(tmp_path / "a", config, block_rows=32)
        synthesize_database(tmp_path / "b", config, block_rows=32)
        assert _digests(tmp_path / "a") == _digests(tmp_path / "b")
        out = synthesize_database(tmp_path / "c", config, block_rows=128)
        db = Database.open(tmp_path / "c")
        assert len(db.table("material_classifications")) == out["links"]
        db.close()


class TestIntegrity:
    def test_links_reference_real_rows(self, tmp_path):
        config = GeneratorConfig(n_materials=400, seed=3,
                                 min_items=2, max_items=6)
        out = synthesize_database(tmp_path / "db", config)
        db = Database.open(tmp_path / "db")
        materials = db.table("materials")
        entries = db.table("ontology_entries")
        links = db.table("material_classifications")
        assert len(materials) == 400
        assert len(links) == out["links"]
        assert 400 * 2 <= out["links"] <= 400 * 6
        seen = set()
        for link in links:
            assert link["materials_id"] in materials
            assert link["ontology_entries_id"] in entries
            pair = (link["materials_id"], link["ontology_entries_id"])
            assert pair not in seen, "duplicate classification link"
            seen.add(pair)
        db.close()

    def test_manifest_is_blocked_format_2(self, tmp_path):
        synthesize_database(
            tmp_path / "db", GeneratorConfig(n_materials=100, seed=5)
        )
        data = json.loads((tmp_path / "db" / "snapshot.json").read_text())
        assert data["format"] == 2
        names = [t["schema"]["name"] for t in data["tables"]]
        assert "materials" in names and "material_classifications" in names
        entry = {t["schema"]["name"]: t for t in data["tables"]}["materials"]
        assert entry["next_id"] == 101
        assert entry["sorted_indexes"] == ["title", "year"]


@pytest.mark.slow
class TestBoundedMemoryAtScale:
    N = 100_000
    #: Synthesis + lazy open may grow the process by at most this much —
    #: far below the ~170 MiB the 10^5-material corpus occupies eagerly
    #: (measured via seed_synthetic), yet roomy enough for numpy chunk
    #: buffers, the link-id buffer and the block cache on any CI box.
    BUDGET = 96 * 1024 * 1024

    def test_synthesize_and_open_1e5_with_bounded_rss(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("CARCS_CACHE_BYTES", str(16 * 1024 * 1024))
        before = rss_bytes()
        if before < 0:
            pytest.skip("RSS not measurable on this platform")
        out = synthesize_database(
            tmp_path / "big", GeneratorConfig(n_materials=self.N)
        )
        assert out["materials"] == self.N
        db = Database.open(tmp_path / "big")
        # A narrow workload over the huge corpus: point reads + one
        # indexed probe.  Lazy paging must not drag the corpus in.
        assert db.table("materials").get(self.N // 2) is not None
        assert db.table("materials").get(7)["collection"] == "synthetic"
        grown = rss_bytes() - before
        assert grown < self.BUDGET, (
            f"peak RSS grew {grown / 1e6:.0f} MB over the "
            f"{self.BUDGET / 1e6:.0f} MB budget"
        )
        stats = db.storage_stats()
        assert stats["block_cache_resident_bytes"] <= 16 * 1024 * 1024
        db.close()
