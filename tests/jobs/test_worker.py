"""Worker loop semantics: outcomes, retries, dead-letters, pools."""

from __future__ import annotations

import threading

import pytest

from repro.db import Database
from repro.jobs import (
    DEAD,
    DONE,
    QUEUED,
    FatalJobError,
    JobQueue,
    WorkerPool,
    run_pending,
)
from repro.obs import MetricsRegistry

from .test_queue import FakeClock


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def queue(clock):
    # No retry backoff: a failed job is immediately runnable again,
    # which keeps the synchronous drain tests single-pass.
    return JobQueue(Database("worker-test"), clock=clock, base_backoff=0.0)


def test_run_pending_executes_handlers(queue):
    seen = []

    def handler(ctx):
        seen.append(ctx.payload["n"])
        return {"doubled": ctx.payload["n"] * 2}

    for n in range(3):
        queue.enqueue("double", {"n": n})
    assert run_pending(queue, {"double": handler}) == 3
    assert seen == [0, 1, 2]
    assert queue.get(1)["result"] == {"doubled": 0}
    assert queue.counts()[DONE] == 3


def test_ordinary_exception_retries_until_done(queue):
    attempts = []

    def flaky(ctx):
        attempts.append(ctx.job["attempts"])
        if len(attempts) < 3:
            raise RuntimeError("transient")
        return "ok"

    queue.enqueue("flaky", max_attempts=5)
    assert run_pending(queue, {"flaky": flaky}) == 3
    job = queue.get(1)
    assert job["status"] == DONE
    assert attempts == [1, 2, 3]


def test_exhausted_retries_dead_letter(queue):
    def always_broken(ctx):
        raise RuntimeError("perma-broken")

    queue.enqueue("broken", max_attempts=2)
    assert run_pending(queue, {"broken": always_broken}) == 2
    job = queue.get(1)
    assert job["status"] == DEAD
    assert "perma-broken" in job["error"]


def test_fatal_error_skips_retries(queue):
    def fatal(ctx):
        raise FatalJobError("bad payload")

    queue.enqueue("fatal", max_attempts=5)
    assert run_pending(queue, {"fatal": fatal}) == 1
    job = queue.get(1)
    assert job["status"] == DEAD
    assert job["attempts"] == 1
    assert "bad payload" in job["error"]


def test_unknown_kind_dead_letters(queue):
    queue.enqueue("mystery")
    run_pending(queue, {})
    job = queue.get(1)
    assert job["status"] == DEAD
    assert "no handler" in job["error"]


def test_outcome_metrics(queue):
    metrics = MetricsRegistry()

    def fatal(ctx):
        raise FatalJobError("nope")

    queue.enqueue("ok")
    queue.enqueue("fatal")
    run_pending(queue, {"ok": lambda ctx: 1, "fatal": fatal},
                metrics=metrics)
    counters = metrics.export()["counters"]
    assert counters['carcs_jobs_total{kind="ok",outcome="done"}']["value"] == 1
    assert counters['carcs_jobs_total{kind="fatal",outcome="dead"}']["value"] == 1
    assert any(k.startswith("carcs_job_seconds")
               for k in metrics.export()["histograms"])


def test_heartbeat_keeps_long_job_leased(queue, clock):
    def slow(ctx):
        clock.advance(queue.visibility_timeout - 1)
        ctx.heartbeat()
        clock.advance(queue.visibility_timeout - 1)
        ctx.heartbeat()
        return "survived"

    queue.enqueue("slow")
    assert run_pending(queue, {"slow": slow}) == 1
    assert queue.get(1)["status"] == DONE


def test_worker_pool_drains_concurrently():
    queue = JobQueue(Database("pool-test"), base_backoff=0.0)
    gate = threading.Barrier(2, timeout=5.0)

    def meet(ctx):
        # Both workers must be inside a job at once to pass the barrier.
        gate.wait()
        return "met"

    queue.enqueue("meet")
    queue.enqueue("meet")
    pool = WorkerPool(queue, {"meet": meet}, size=2, poll_interval=0.01)
    pool.start()
    try:
        assert pool.drain(timeout=10.0)
    finally:
        pool.stop()
    assert queue.counts()[DONE] == 2
    assert queue.counts()[QUEUED] == 0
