"""Durable job queue semantics: leases, backoff, fencing, durability."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.jobs import (
    DEAD,
    DONE,
    JOBS_TABLE,
    LEASED,
    QUEUED,
    JobQueue,
    QueueFull,
    StaleLease,
)


class FakeClock:
    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def queue(clock):
    return JobQueue(Database("jobs-test"), clock=clock)


def test_enqueue_lease_complete_happy_path(queue, clock):
    job = queue.enqueue("classify", {"top": 3})
    assert job["status"] == QUEUED
    assert job["payload"] == {"top": 3}
    assert job["attempts"] == 0

    leased = queue.lease("w1")
    assert leased["id"] == job["id"]
    assert leased["status"] == LEASED
    assert leased["attempts"] == 1
    assert leased["lease_deadline"] == clock.now + queue.visibility_timeout

    done = queue.complete(job["id"], "w1", {"suggested": 7})
    assert done["status"] == DONE
    assert done["result"] == {"suggested": 7}
    assert queue.lease("w1") is None


def test_lease_order_is_oldest_first(queue):
    first = queue.enqueue("classify")
    second = queue.enqueue("classify")
    assert queue.lease("w")["id"] == first["id"]
    assert queue.lease("w")["id"] == second["id"]


def test_delay_defers_runnability(queue, clock):
    queue.enqueue("classify", delay=10.0)
    assert queue.lease("w") is None
    clock.advance(10.0)
    assert queue.lease("w") is not None


def test_idempotency_key_dedupes(queue):
    a = queue.enqueue("classify", idempotency_key="sweep-1")
    b = queue.enqueue("classify", idempotency_key="sweep-1")
    assert a["id"] == b["id"]
    assert queue.counts()["total"] == 1
    c = queue.enqueue("classify", idempotency_key="sweep-2")
    assert c["id"] != a["id"]


def test_queue_full_raises(clock):
    queue = JobQueue(Database("full"), clock=clock, max_queued=2)
    queue.enqueue("classify")
    queue.enqueue("classify")
    with pytest.raises(QueueFull):
        queue.enqueue("classify")
    # Finished jobs free backlog slots.
    job = queue.lease("w")
    queue.complete(job["id"], "w")
    queue.enqueue("classify")


def test_visibility_timeout_releases_abandoned_lease(queue, clock):
    job = queue.enqueue("classify")
    assert queue.lease("w1")["id"] == job["id"]
    # Not expired yet: nothing to lease.
    clock.advance(queue.visibility_timeout / 2)
    assert queue.lease("w2") is None
    # Past the deadline the next lease call returns the job to the
    # queue — with a retry backoff, so it only becomes runnable (and
    # leasable) once that elapses.
    clock.advance(queue.visibility_timeout)
    assert queue.lease("w2") is None
    clock.advance(queue.max_backoff)
    again = queue.lease("w2")
    assert again["id"] == job["id"]
    assert again["attempts"] == 2
    assert again["lease_owner"] == "w2"


def test_heartbeat_extends_lease(queue, clock):
    job = queue.enqueue("classify")
    queue.lease("w1")
    clock.advance(queue.visibility_timeout - 1)
    deadline = queue.heartbeat(job["id"], "w1")
    assert deadline == clock.now + queue.visibility_timeout
    # The extension keeps the job invisible past the original deadline.
    clock.advance(queue.visibility_timeout - 1)
    assert queue.lease("w2") is None


def test_retryable_failure_backs_off_exponentially(queue, clock):
    job = queue.enqueue("classify", max_attempts=3)
    queue.lease("w")
    failed = queue.fail(job["id"], "w", "boom", retryable=True)
    assert failed["status"] == QUEUED
    assert failed["error"] == "boom"
    assert failed["not_before"] == clock.now + queue.backoff(1)
    assert queue.lease("w") is None          # still backing off
    clock.advance(queue.backoff(1))
    assert queue.lease("w")["attempts"] == 2
    failed = queue.fail(job["id"], "w", "boom again")
    assert failed["not_before"] == clock.now + queue.backoff(2)
    assert queue.backoff(2) > queue.backoff(1)


def test_exhausted_attempts_dead_letter(queue, clock):
    job = queue.enqueue("classify", max_attempts=2)
    for _ in range(2):
        clock.advance(queue.max_backoff)
        leased = queue.lease("w")
        assert leased is not None
        queue.fail(job["id"], "w", "boom")
    dead = queue.get(job["id"])
    assert dead["status"] == DEAD
    clock.advance(queue.max_backoff)
    assert queue.lease("w") is None


def test_non_retryable_failure_dead_letters_immediately(queue):
    job = queue.enqueue("classify", max_attempts=5)
    queue.lease("w")
    assert queue.fail(job["id"], "w", "bad payload",
                      retryable=False)["status"] == DEAD


def test_stale_lease_fencing(queue, clock):
    """A zombie whose lease was re-issued cannot clobber the new owner."""
    job = queue.enqueue("classify")
    queue.lease("zombie")
    clock.advance(queue.visibility_timeout + 1)
    queue.requeue_expired()
    clock.advance(queue.max_backoff)
    assert queue.lease("fresh")["id"] == job["id"]
    with pytest.raises(StaleLease):
        queue.complete(job["id"], "zombie")
    with pytest.raises(StaleLease):
        queue.heartbeat(job["id"], "zombie")
    with pytest.raises(StaleLease):
        queue.fail(job["id"], "zombie", "late")
    # The rightful owner still finishes.
    assert queue.complete(job["id"], "fresh")["status"] == DONE


def test_counts_and_pending(queue, clock):
    queue.enqueue("classify")
    queue.enqueue("classify")
    queue.enqueue("classify")
    leased = queue.lease("w")
    counts = queue.counts()
    assert counts[QUEUED] == 2 and counts[LEASED] == 1
    assert queue.pending() == 3
    queue.fail(leased["id"], "w", "boom", retryable=False)
    assert queue.counts()[DEAD] == 1
    assert queue.pending() == 2


def test_jobs_survive_reopen(tmp_path, clock):
    """The queue rides the WAL: state replays on ``Database.open``."""
    db = Database("durable")
    queue = JobQueue(db, clock=clock)
    queued = queue.enqueue("classify", {"collection": "nifty"})
    running = queue.enqueue("classify")
    queue.enqueue("classify", idempotency_key="dedup-me")
    db.attach(tmp_path)
    # Post-attach commits land in the WAL too.
    assert queue.lease("w1")["id"] == queued["id"]
    queue.complete(queued["id"], "w1", {"ok": True})
    assert queue.lease("w1")["id"] == running["id"]
    db.close()

    reopened = Database.open(tmp_path)
    queue2 = JobQueue(reopened, clock=clock, create=False)
    assert queue2.available
    assert queue2.get(queued["id"])["status"] == DONE
    assert queue2.get(queued["id"])["result"] == {"ok": True}
    # The leased job survived as leased — its owner is gone, so after
    # the visibility timeout (plus retry backoff) it is leased again.
    assert queue2.get(running["id"])["status"] == LEASED
    clock.advance(queue2.visibility_timeout + 1)
    queue2.requeue_expired()
    clock.advance(queue2.max_backoff)
    assert queue2.lease("w2")["id"] == running["id"]
    # Idempotency keys survive too.
    dup = queue2.enqueue("classify", idempotency_key="dedup-me")
    assert dup["id"] == 3
    reopened.close()


def test_replica_view_without_table_degrades(clock):
    db = Database("replica")
    queue = JobQueue(db, clock=clock, create=False)
    assert not queue.available
    assert JOBS_TABLE not in db
    assert queue.lease("w") is None
    assert queue.jobs() == []
    assert queue.get(1) is None
    assert queue.counts()["total"] == 0
    assert queue.pending() == 0
