"""The automatic classification service: train, suggest, review."""

from __future__ import annotations

import pytest

from repro.core.classification import ClassificationSet
from repro.core.material import Material, MaterialKind
from repro.corpus.seed import seed_all
from repro.jobs import (
    ClassificationService,
    default_handlers,
    material_text,
    unclassified_material_ids,
)
from repro.jobs.worker import JobContext


@pytest.fixture(scope="module")
def corpus():
    """Seeded corpus shared by this module; tests add their own
    unclassified materials and target them explicitly by id."""
    return seed_all()


@pytest.fixture(scope="module")
def service(corpus):
    return ClassificationService(corpus)


def _add_unclassified(repo, template_id: int, *, collection="inbox"):
    """An unclassified clone of an already-classified material — the
    easiest text for the model to place."""
    template = repo.get_material(template_id)
    clone = Material(
        title=f"Incoming copy of {template.title}",
        description=template.description,
        kind=MaterialKind.ASSIGNMENT,
        languages=template.languages,
        tags=template.tags,
        collection=collection,
    )
    return repo.add_material(clone, ClassificationSet())


def _classified_id(repo) -> int:
    keys = repo.classification_keys()
    return next(mid for mid in sorted(keys) if keys[mid])


def test_unclassified_material_ids(corpus):
    before = unclassified_material_ids(corpus)
    stored = _add_unclassified(corpus, _classified_id(corpus),
                               collection="inbox-a")
    after = unclassified_material_ids(corpus)
    assert stored.id in after
    assert set(after) - set(before) == {stored.id}
    assert unclassified_material_ids(corpus, collection="inbox-a") == [
        stored.id
    ]


def test_suggest_for_places_lookalike_material(corpus, service):
    template_id = _classified_id(corpus)
    stored = _add_unclassified(corpus, template_id)
    suggestions = service.suggest_for([stored.id])[stored.id]
    assert suggestions, "a near-duplicate must draw suggestions"
    template_keys = corpus.classification_keys()[template_id]
    assert {s.key for s in suggestions} & set(template_keys)
    assert all(s.confidence >= service.min_confidence for s in suggestions)
    assert all(s.ontology in ("CS13", "PDC12") for s in suggestions)
    # Ranked best-first.
    confidences = [s.confidence for s in suggestions]
    assert confidences == sorted(confidences, reverse=True)


def test_classify_materials_writes_pending_suggestions(corpus, service):
    stored = _add_unclassified(corpus, _classified_id(corpus))
    report = service.classify_materials([stored.id])
    assert report["suggested"] > 0
    rows = corpus.suggestions(material_id=stored.id, origin="machine")
    assert len(rows) == report["suggested"]
    assert all(r["status"] == "pending" for r in rows)
    assert all(r["confidence"] is not None for r in rows)
    # Confidence-ranked, best first.
    confidences = [r["confidence"] for r in rows]
    assert confidences == sorted(confidences, reverse=True)


def test_classify_is_idempotent_per_material_key(corpus, service):
    stored = _add_unclassified(corpus, _classified_id(corpus))
    first = service.classify_materials([stored.id])
    assert first["suggested"] > 0
    again = service.classify_materials([stored.id])
    assert again["suggested"] == 0
    assert again["skipped"] == first["suggested"]
    assert len(corpus.suggestions(material_id=stored.id)) == first["suggested"]


def test_accept_applies_classification_and_analytics_see_it(corpus, service):
    stored = _add_unclassified(corpus, _classified_id(corpus),
                               collection="inbox-accept")
    service.classify_materials([stored.id])
    rows = corpus.suggestions(material_id=stored.id, status="pending")
    best = rows[0]
    ontology = best["ontology"]
    before = corpus.coverage(ontology, collection="inbox-accept")
    assert sum(before.rollup_counts.values()) == 0

    corpus.accept_suggestion(best["id"])

    keys = corpus.classification_keys()[stored.id]
    assert best["ontology_key"] in keys
    # The memoized coverage invalidates on the classification write.
    after = corpus.coverage(ontology, collection="inbox-accept")
    assert sum(after.rollup_counts.values()) > 0


def test_reject_leaves_material_unclassified(corpus, service):
    stored = _add_unclassified(corpus, _classified_id(corpus))
    service.classify_materials([stored.id])
    rows = corpus.suggestions(material_id=stored.id, status="pending")
    corpus.reject_suggestion(rows[0]["id"])
    assert best_status(corpus, rows[0]["id"]) == "rejected"
    assert not corpus.classification_keys()[stored.id]


def best_status(repo, suggestion_id: int) -> str:
    return repo.db.table("suggestions").get(suggestion_id)["status"]


def test_handler_sweeps_collection_and_heartbeats(corpus):
    service = ClassificationService(corpus, batch_size=1)
    stored_a = _add_unclassified(corpus, _classified_id(corpus),
                                 collection="inbox-sweep")
    stored_b = _add_unclassified(corpus, _classified_id(corpus),
                                 collection="inbox-sweep")
    beats = []

    class FakeCtx:
        payload = {"collection": "inbox-sweep"}

        def heartbeat(self):
            beats.append(1)

    from repro.jobs import make_classify_handler

    handler = make_classify_handler(corpus, service)
    report = handler(FakeCtx())
    assert report["materials"] == 2
    assert report["suggested"] > 0
    # batch_size=1 over two materials -> one between-batch heartbeat.
    assert len(beats) == 1
    for stored in (stored_a, stored_b):
        assert corpus.suggestions(material_id=stored.id, status="pending")


def test_handler_accepts_explicit_ids(corpus):
    stored = _add_unclassified(corpus, _classified_id(corpus))

    class FakeCtx:
        payload = {"material_ids": [stored.id], "top": 2}

        def heartbeat(self):
            pass

    report = default_handlers(corpus)["classify"](FakeCtx())
    assert report["materials"] == 1
    assert len(corpus.suggestions(material_id=stored.id)) <= 2


def test_material_text_folds_facets(corpus):
    stored = corpus.get_material(_classified_id(corpus))
    text = material_text(stored)
    assert stored.title in text
