"""The kill -9 scenario: a worker dies mid-job, nothing is lost.

The queue's durability story has three legs and this module walks all
of them against a real on-disk WAL:

1. the job (and the partial work its handler committed) survives the
   crash because every state transition is a WAL frame;
2. after the visibility timeout the job is leased out again and the
   re-run completes it — with zero duplicated suggestion rows, because
   ``machine_suggest`` is idempotent per (material, key);
3. the dead worker's zombie writes are fenced off with StaleLease.
"""

from __future__ import annotations

import pytest

from repro.core.classification import ClassificationSet
from repro.core.material import Material, MaterialKind
from repro.core.repository import Repository
from repro.corpus.seed import seed_all
from repro.db import Database
from repro.jobs import (
    DONE,
    LEASED,
    ClassificationService,
    JobQueue,
    StaleLease,
    default_handlers,
    make_classify_handler,
    run_pending,
)
from tests.faults import CrashBudget, CrashError

from .test_queue import FakeClock


def _add_unclassified(repo, *, collection="inbox"):
    keys = repo.classification_keys()
    template = repo.get_material(
        next(mid for mid in sorted(keys) if keys[mid])
    )
    clone = Material(
        title=f"Incoming copy of {template.title}",
        description=template.description,
        kind=MaterialKind.ASSIGNMENT,
        languages=template.languages,
        tags=template.tags,
        collection=collection,
    )
    return repo.add_material(clone, ClassificationSet())


def _suggestion_pairs(repo, material_id):
    return [
        (r["material_id"], r["ontology_key"])
        for r in repo.suggestions(material_id=material_id)
    ]


def test_killed_worker_job_completes_after_restart(tmp_path):
    clock = FakeClock()
    repo = seed_all()
    db = repo.db
    db.attach(tmp_path, wal_sync="always")
    queue = JobQueue(db, clock=clock)
    first = _add_unclassified(repo)
    second = _add_unclassified(repo)

    job = queue.enqueue(
        "classify", {"material_ids": [first.id, second.id]},
    )
    leased = queue.lease("worker-A")
    assert leased["id"] == job["id"]

    # One material per batch; the fuse blows at the first between-batch
    # heartbeat — i.e. the worker dies after committing the suggestions
    # for `first` but before touching `second`.
    service = ClassificationService(repo, batch_size=1)
    handler = make_classify_handler(repo, service)
    fuse = CrashBudget(0)

    class DyingContext:
        payload = leased["payload"]
        heartbeat = staticmethod(fuse)

    with pytest.raises(CrashError):
        handler(DyingContext())
    partial = _suggestion_pairs(repo, first.id)
    assert partial, "the first batch must have been committed"
    assert not _suggestion_pairs(repo, second.id)
    db.close()

    # --- the process is gone; a fresh one opens the same directory ---
    db2 = Database.open(tmp_path)
    repo2 = Repository(db2)
    queue2 = JobQueue(db2, clock=clock, create=False)
    recovered = queue2.get(job["id"])
    assert recovered["status"] == LEASED          # the lease is durable
    assert recovered["payload"] == {"material_ids": [first.id, second.id]}
    # Invisible until the dead worker's visibility timeout passes.
    assert queue2.lease("worker-B") is None
    clock.advance(queue2.visibility_timeout + 1)
    queue2.requeue_expired()
    clock.advance(queue2.max_backoff)

    assert run_pending(
        queue2, default_handlers(repo2), worker_id="worker-B",
    ) == 1
    finished = queue2.get(job["id"])
    assert finished["status"] == DONE
    assert finished["attempts"] == 2
    assert finished["result"]["suggested"] > 0    # it did the second half

    # Zero lost and zero duplicated suggestions.
    for material in (first, second):
        pairs = _suggestion_pairs(repo2, material.id)
        assert pairs, f"material {material.id} must have suggestions"
        assert len(pairs) == len(set(pairs))
    # The first batch's rows were not re-filed by the retry.
    assert sorted(_suggestion_pairs(repo2, first.id)) == sorted(partial)

    # The dead worker's zombie writes are fenced.
    with pytest.raises(StaleLease):
        queue2.complete(job["id"], "worker-A")
    with pytest.raises(StaleLease):
        queue2.heartbeat(job["id"], "worker-A")
    db2.close()
