"""The projected PDC 2019 revision and its diff against PDC12."""

import pytest

from repro.ontologies import load, pdc12, pdc2019
from repro.ontologies.diff import diff_ontologies


@pytest.fixture(scope="module")
def pdc19():
    return load("PDC19")


class TestFixedOddities:
    """Each paper-reported PDC12 oddity must be fixed in PDC19."""

    def test_amdahl_moved_to_algorithm(self, pdc19):
        hits = pdc19.search("amdahl")
        assert len(hits) == 1
        assert pdc19.path_string(hits[0].key).startswith(
            "Algorithm::Parallel and Distributed Models and Complexity"
        )

    def test_speedup_metrics_moved_with_amdahl(self, pdc19):
        hits = pdc19.search("speedup and efficiency")
        assert hits
        assert all(
            pdc19.area_of(n.key).label == "Algorithm" for n in hits
        )

    def test_critical_path_present(self, pdc19):
        hits = pdc19.search("critical path")
        assert len(hits) == 1
        assert hits[0].label.startswith("Notions from scheduling")

    def test_mapreduce_present(self, pdc19):
        assert pdc19.search("map-reduce")

    def test_bsp_and_cilk_split(self, pdc19):
        bsp = pdc19.search("bulk synchronous")
        cilk = pdc19.search("cilk")
        assert len(bsp) == 1 and len(cilk) == 1
        assert bsp[0].key != cilk[0].key
        # the bundled entry is gone
        assert not [n for n in pdc19.nodes() if "BSP/CILK" in n.label]

    def test_middleware_unit_added(self, pdc19):
        hits = pdc19.search("middleware")
        assert hits
        assert pdc19.area_of(hits[0].key).label == "Cross Cutting and Advanced"


class TestStructure:
    def test_still_four_areas(self, pdc19):
        assert len(pdc19.areas()) == 4

    def test_grew_by_net_revisions(self, pdc19):
        base = load("PDC12")
        # -1 bundle, +2 split halves, +2 adds (critical path, mapreduce),
        # +1 unit, +2 middleware topics => net +6
        assert len(pdc19) == len(base) + 6

    def test_validates(self, pdc19):
        pdc19.validate()

    def test_unchanged_keys_translate_one_to_one(self, pdc19):
        key = pdc12.key_of(
            "PROG", "Parallel programming paradigms and notations",
            "Programming notations: threads (e.g., pthreads)",
        )
        (translated,) = pdc2019.translate_key(key)
        assert translated in pdc19
        assert pdc19.node(translated).label == load("PDC12").node(key).label

    def test_split_key_translates_to_both_halves(self, pdc19):
        key = pdc12.key_of(
            "ALGO", "Parallel and Distributed Models and Complexity",
            "Model-based notions: BSP/CILK multithreaded models",
        )
        translated = pdc2019.translate_key(key)
        assert len(translated) == 2
        assert all(t in pdc19 for t in translated)

    def test_moved_key_translates_to_new_home(self, pdc19):
        key = pdc12.key_of(
            "PROG", "Performance issues",
            "Data: Amdahl's Law and its consequences",
        )
        (translated,) = pdc2019.translate_key(key)
        assert pdc19.area_of(translated).label == "Algorithm"


class TestDiff:
    @pytest.fixture(scope="class")
    def diff(self, pdc19):
        return diff_ontologies(load("PDC12"), pdc19)

    def test_summary_counts(self, diff):
        assert diff.summary() == {
            "added": 7, "removed": 1, "moved": 3, "relabelled": 0,
        }

    def test_moves_are_the_speedup_family(self, diff):
        labels = {e.label for e in diff.moved}
        assert any("Amdahl" in l for l in labels)
        assert any("Gustafson" in l for l in labels)
        assert all(
            e.old_path.startswith("Programming::Performance issues")
            for e in diff.moved
        )

    def test_removed_is_the_bundle(self, diff):
        assert [e.label for e in diff.removed] == [
            "Model-based notions: BSP/CILK multithreaded models"
        ]

    def test_identity_diff_is_empty(self):
        diff = diff_ontologies(load("PDC12"), load("PDC12"))
        assert diff.is_empty()

    def test_format_mentions_direction(self, diff):
        assert diff.format().startswith("Diff PDC12 -> PDC19")
