"""ACM CS2013 ontology fidelity checks."""

import pytest

from repro.core.ontology import BloomLevel, NodeKind, Tier
from repro.ontologies.cs2013 import topic_key, unit_key


class TestScale:
    def test_about_3000_entries(self, cs13):
        # "the CS13 classification contains about 3000 entries" (IV-A)
        assert 2700 <= len(cs13) <= 3400

    def test_eighteen_knowledge_areas(self, cs13):
        assert len(cs13.areas()) == 18

    def test_real_area_codes(self, cs13):
        codes = {a.code for a in cs13.areas()}
        assert codes == {
            "AL", "AR", "CN", "DS", "GV", "HCI", "IAS", "IM", "IS", "NC",
            "OS", "PBD", "PD", "PL", "SDF", "SE", "SF", "SP",
        }

    def test_163_knowledge_units(self, cs13):
        # the real CS2013 body of knowledge has 163 KUs
        assert cs13.count_by_kind()[NodeKind.UNIT] == 163

    def test_every_unit_has_topics_and_outcomes(self, cs13):
        for area in cs13.areas():
            for unit in cs13.children(area.key):
                kinds = {n.kind for n in cs13.children(unit.key)}
                assert NodeKind.TOPIC in kinds, unit.key
                assert NodeKind.LEARNING_OUTCOME in kinds, unit.key


class TestStructure:
    def test_parallelism_in_three_places(self, cs13):
        """IV-A: "parallelism related topics appear in three different
        places: System Fundamental, Computational Science::Processing,
        and in Parallel and Distributed Computing"."""
        hits = cs13.search("parallel", kinds=[NodeKind.TOPIC])
        areas = {cs13.area_of(n.key).code for n in hits}
        assert {"SF", "CN", "PD"} <= areas

    def test_task_based_decompositions_entry_exists(self, cs13):
        # IV-A: "CS13 has an entry for Task-Based Decompositions"
        hits = cs13.search("task-based decompositions")
        assert hits
        assert cs13.area_of(hits[0].key).code == "PD"

    def test_runtime_systems_under_programming_languages(self, cs13):
        # IV-A: "Runtime systems appear under Programming Languages in CS13"
        key = unit_key("PL", "Runtime Systems")
        assert cs13.area_of(key).code == "PL"

    def test_numerical_integration_under_cn(self, cs13):
        key = topic_key(
            "CN", "Numerical Analysis",
            "Numerical differentiation and integration",
        )
        node = cs13.node(key)
        assert node.kind is NodeKind.TOPIC
        assert cs13.path_string(key).startswith("Computational Science")

    def test_arrays_in_fundamental_data_structures(self, cs13):
        key = topic_key("SDF", "Fundamental Data Structures", "Arrays")
        assert "Fundamental Data Structures" in cs13.path_string(key)

    def test_unit_tier_structure(self, cs13):
        # SDF units are all core-1; PD has core-1, core-2 and elective units
        for unit in cs13.children("CS13/SDF"):
            assert unit.tier is Tier.CORE1
        pd_tiers = {u.tier for u in cs13.children("CS13/PD")}
        assert {Tier.CORE1, Tier.CORE2, Tier.ELECTIVE} <= pd_tiers

    def test_outcomes_carry_cs13_levels(self, cs13):
        levels = {
            n.bloom
            for n in cs13.nodes()
            if n.kind is NodeKind.LEARNING_OUTCOME
        }
        assert levels == {
            BloomLevel.FAMILIARITY, BloomLevel.USAGE, BloomLevel.ASSESSMENT
        }

    def test_build_is_deterministic(self):
        from repro.ontologies.cs2013 import build
        a, b = build(), build()
        assert len(a) == len(b)
        for na, nb in zip(a.nodes(), b.nodes()):
            assert na.key == nb.key and na.label == nb.label


class TestKeyResolution:
    def test_topic_key_round_trips(self, cs13):
        key = topic_key("SDF", "Fundamental Programming Concepts",
                        "Conditional and iterative control structures")
        assert cs13.node(key).label == (
            "Conditional and iterative control structures"
        )

    def test_topic_key_unknown_area(self):
        with pytest.raises(KeyError):
            topic_key("XX", "Nope", "Nope")

    def test_topic_key_unknown_unit(self):
        with pytest.raises(KeyError):
            topic_key("SDF", "Not A Unit", "Arrays")

    def test_topic_key_unknown_topic(self):
        with pytest.raises(KeyError):
            topic_key("SDF", "Fundamental Data Structures", "Quantum Arrays")

    def test_topic_key_on_generated_unit(self):
        with pytest.raises(KeyError):
            topic_key("PBD", "Web Platforms", "anything")

    def test_unit_key_resolves(self, cs13):
        key = unit_key("PD", "Parallel Decomposition")
        assert cs13.node(key).label == "Parallel Decomposition"

    def test_validate_passes(self, cs13):
        cs13.validate()
