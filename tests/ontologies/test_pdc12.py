"""NSF/IEEE-TCPP PDC12 ontology fidelity — including the oddities the
paper reports in Section IV-A, which the gap analyses must rediscover."""

import pytest

from repro.core.ontology import BloomLevel, NodeKind, Tier
from repro.ontologies.pdc12 import key_of


class TestStructure:
    def test_four_areas(self, pdc12):
        labels = [a.label for a in pdc12.areas()]
        assert labels == [
            "Architecture", "Programming", "Algorithm",
            "Cross Cutting and Advanced",
        ]

    def test_two_tier_levels_only(self, pdc12):
        # "the PDC curriculum only exposes two levels: core and elective"
        tiers = {
            n.tier for n in pdc12.nodes() if n.kind is NodeKind.TOPIC
        }
        assert tiers == {Tier.CORE, Tier.ELECTIVE}

    def test_topics_carry_pdc_bloom_levels(self, pdc12):
        levels = {
            n.bloom for n in pdc12.nodes() if n.kind is NodeKind.TOPIC
        }
        assert levels == {
            BloomLevel.KNOW, BloomLevel.COMPREHEND, BloomLevel.APPLY
        }

    def test_size_is_realistic(self, pdc12):
        assert 90 <= len(pdc12) <= 180

    def test_validate_passes(self, pdc12):
        pdc12.validate()


class TestPaperOddities:
    def test_amdahl_under_programming_performance_data(self, pdc12):
        """IV-A: "Amdhal's law (and related topics) falls under
        Programming::Performance Issue::Data"."""
        hits = pdc12.search("amdahl")
        assert hits
        path = pdc12.path_string(hits[0].key)
        assert path.startswith("Programming::Performance issues")
        assert "Data:" in hits[0].label

    def test_bsp_bundled_with_cilk(self, pdc12):
        """IV-A: "There are entries for BSP; which is oddly bundled with
        Cilk"."""
        hits = pdc12.search("bsp")
        assert len(hits) == 1
        assert "CILK" in hits[0].label.upper()

    def test_no_mapreduce_entry(self, pdc12):
        """IV-A: "The Map-Reduce programming model seems mostly missing"."""
        assert pdc12.search("map-reduce") == []
        assert pdc12.search("mapreduce") == []

    def test_no_critical_path_under_scheduling(self, pdc12):
        """IV-A: "Notions from scheduling misses Critical Path"."""
        scheduling = [
            n for n in pdc12.nodes()
            if n.label.startswith("Notions from scheduling")
        ]
        assert scheduling  # the sub-heading exists...
        assert not any("critical path" in n.label.lower() for n in scheduling)
        # ...and critical path appears nowhere in PDC12
        assert pdc12.search("critical path") == []

    def test_no_middleware_topics(self, pdc12):
        """IV-A: middleware "seem to be mostly missing" from both."""
        assert pdc12.search("middleware") == []

    def test_cloud_computing_present(self, pdc12):
        assert pdc12.search("cloud")


class TestKeyResolution:
    def test_key_of_topic(self, pdc12):
        key = key_of(
            "PROG", "Parallel programming paradigms and notations",
            "Programming notations: message passing libraries (e.g., MPI)",
        )
        assert key in pdc12
        assert "MPI" in pdc12.node(key).label

    def test_key_of_unit(self, pdc12):
        key = key_of("ALGO", "Algorithmic Paradigms")
        assert pdc12.node(key).kind is NodeKind.UNIT

    def test_area_rollup(self, pdc12):
        key = key_of("PROG", "Tools", "Performance monitoring and profiling tools")
        assert pdc12.area_of(key).label == "Programming"
