"""Ontology registry: loading, memoization, extension."""

import pytest

from repro.core.ontology import NodeKind, Ontology
from repro.ontologies import registry


class TestLoad:
    def test_builtins_available(self):
        assert set(registry.available()) >= {"CS13", "PDC12"}

    def test_load_unknown(self):
        with pytest.raises(KeyError):
            registry.load("CYBER99")

    def test_load_is_memoized(self):
        a = registry.load("PDC12")
        b = registry.load("PDC12")
        assert a is b

    def test_load_all(self):
        all_ = registry.load_all()
        assert set(all_) == set(registry.available())


class TestRegister:
    def _tiny(self) -> Ontology:
        onto = Ontology("TINY")
        onto.add("TINY/A", "A", NodeKind.AREA)
        return onto

    def test_register_and_load_custom(self):
        registry.register("TINY", self._tiny)
        try:
            onto = registry.load("TINY")
            assert len(onto) == 1
        finally:
            registry.unregister("TINY")
        assert "TINY" not in registry.available()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            registry.register("CS13", self._tiny)

    def test_invalid_ontology_rejected_at_load(self):
        def broken() -> Ontology:
            onto = Ontology("BROKEN")
            onto.add("BROKEN/A", "A", NodeKind.AREA)
            onto._nodes["BROKEN/A"].children.append("BROKEN/ghost")
            return onto

        registry.register("BROKEN", broken)
        try:
            with pytest.raises(ValueError):
                registry.load("BROKEN")
        finally:
            registry.unregister("BROKEN")
