"""Every 4xx/5xx the system emits shares one error envelope.

The shape is ``{"error": {"code", "message", "request_id"}}`` — router
404/405s, handler 400s, the 500 boundary, replica 403s, the front
tier's 503s and the job queue's 429 all flow through the same builder
(:func:`repro.web.http.error_response`), so clients parse one shape.
"""

from __future__ import annotations

import pytest

from repro.core.repository import Repository
from repro.corpus.seed import seed_ontologies
from repro.web import CarCsApi, Client, FrontTier, LocalBackend, Request
from repro.web.api import API_V2_PREFIX


def _api(**kwargs) -> CarCsApi:
    repo = Repository()
    seed_ontologies(repo)
    return CarCsApi(repo, **kwargs)


def _explode(request):
    raise RuntimeError("kaboom")


def _broken_backend() -> LocalBackend:
    return LocalBackend("primary", _explode)


CASES = {
    "router-404": lambda: Client(_api()).get("/api/v2/not-a-resource"),
    "router-405": lambda: Client(_api()).delete("/api/v2/search"),
    "resource-404": lambda: Client(_api()).get("/api/v2/materials/12345"),
    "validation-400": lambda: Client(_api()).post(
        "/api/v2/materials", body={}
    ),
    "cursor-400": lambda: Client(_api()).get("/api/v2/materials?cursor=@@"),
    "boundary-500": lambda: Client(_crashing_api()).get("/api/v2/crash"),
    "replica-403": lambda: Client(
        _api(read_only=True, primary_url="http://primary:8080")
    ).post("/api/v2/materials", body={"title": "x"}),
    "front-tier-503": lambda: FrontTier(_broken_backend())(
        Request.build("POST", "/api/v2/materials", body={"title": "x"})
    ),
    "queue-429": lambda: _saturated_queue_response(),
}


def _crashing_api() -> CarCsApi:
    api = _api()
    api.router.add("GET", f"{API_V2_PREFIX}/crash", _explode)
    return api


def _saturated_queue_response():
    client = Client(_api(max_queued_jobs=1), root=API_V2_PREFIX)
    assert client.post("/jobs/classify", body={}).status == 202
    return client.post("/jobs/classify", body={})


EXPECTED_STATUS = {
    "router-404": 404,
    "router-405": 405,
    "resource-404": 404,
    "validation-400": 400,
    "cursor-400": 400,
    "boundary-500": 500,
    "replica-403": 403,
    "front-tier-503": 503,
    "queue-429": 429,
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_error_envelope_shape(case):
    response = CASES[case]()
    assert response.status == EXPECTED_STATUS[case]
    envelope = response.error
    assert envelope is not None, "4xx/5xx must carry the error envelope"
    assert set(envelope) == {"code", "message", "request_id"}
    assert envelope["code"] == response.status
    assert isinstance(envelope["message"], str) and envelope["message"]
    assert isinstance(envelope["request_id"], str)


@pytest.mark.parametrize("case", sorted(set(CASES) - {"front-tier-503"}))
def test_request_id_is_filled_through_the_pipeline(case):
    """Inside the middleware chain the id middleware stamps every
    envelope (the front tier sits outside it and has no request ids)."""
    response = CASES[case]()
    assert response.error["request_id"]
    assert response.error["request_id"] == response.headers["x-request-id"]


@pytest.mark.parametrize("case", ["front-tier-503", "queue-429"])
def test_shed_responses_carry_retry_after(case):
    response = CASES[case]()
    assert int(response.headers["retry-after"]) >= 1
