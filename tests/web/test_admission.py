"""Admission control: deadlines, per-client rate limits, inflight caps.

The front door must shed with structured backpressure *before* doomed
work reaches the engine — and an armed deadline must propagate through
the trace contextvar so storage-layer work aborts once the client has
given up.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.repository import Repository
from repro.corpus.seed import seed_ontologies
from repro.obs import MetricsRegistry
from repro.obs import trace as _trace
from repro.web import (
    AdmissionMiddleware,
    CarCsApi,
    Client,
    FrontTier,
    LocalBackend,
    Request,
    TokenBucket,
)
from repro.web.http import json_response
from repro.web.middleware import CLIENT_HEADER, DEADLINE_HEADER


def _api(**kwargs) -> CarCsApi:
    repo = Repository()
    seed_ontologies(repo)
    return CarCsApi(repo, **kwargs)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=3.0, now=0.0)
        assert [bucket.acquire(now=0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.acquire(now=0.0)
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        # Half a second later exactly one token has accrued.
        assert bucket.acquire(now=0.5) == 0.0
        assert bucket.acquire(now=0.5) > 0.0

    def test_burst_caps_idle_accrual(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket.acquire(now=0.0)
        # An hour idle still only holds `burst` tokens.
        assert bucket.acquire(now=3600.0) == 0.0
        assert bucket.acquire(now=3600.0) == 0.0
        assert bucket.acquire(now=3600.0) > 0.0


class TestDeadlines:
    def test_expired_deadline_sheds_before_dispatch(self):
        client = Client(_api(), root="/api/v1")
        response = client.get("/stats", headers={DEADLINE_HEADER: "0"})
        assert response.status == 503
        assert response.headers["retry-after"] == "1"
        assert "deadline" in response.error["message"]

    def test_generous_deadline_admits(self):
        client = Client(_api(), root="/api/v1")
        response = client.get("/stats", headers={DEADLINE_HEADER: "30000"})
        assert response.ok

    def test_malformed_deadline_is_ignored(self):
        client = Client(_api(), root="/api/v1")
        for junk in ("banana", "", "inf", "nan"):
            assert client.get(
                "/stats", headers={DEADLINE_HEADER: junk}
            ).ok

    def test_deadline_exceeded_mid_dispatch_becomes_503(self):
        api = _api()

        def slow(request):
            time.sleep(0.02)
            _trace.check_deadline("slow handler")
            return json_response({"ok": True})

        api.router.add("GET", "/api/v1/slow", slow)
        client = Client(api)
        response = client.get("/api/v1/slow", headers={DEADLINE_HEADER: "5"})
        assert response.status == 503
        assert response.headers["retry-after"] == "1"
        assert api.admission.stats()["shed_deadline"] == 1
        # The deadline contextvar never leaks past the request.
        assert _trace.deadline_remaining() is None

    def test_db_layer_honors_the_deadline(self):
        api = _api()

        def db_write(request):
            time.sleep(0.02)
            # Every traced engine op checks the deadline at entry.
            api.repo.db.insert("authors", name="too-late")
            return json_response({"ok": True})

        api.router.add("GET", "/api/v1/dbwrite", db_write)
        client = Client(api)
        response = client.get(
            "/api/v1/dbwrite", headers={DEADLINE_HEADER: "5"}
        )
        assert response.status == 503
        # The abort happened before the engine touched anything.
        assert api.repo.db.table("authors").find_one(name="too-late") is None


class TestRateLimit:
    def test_per_client_buckets_answer_429_with_retry_after(self):
        client = Client(
            _api(rate_limit=1.0, rate_burst=2.0), root="/api/v1"
        )
        one = {CLIENT_HEADER: "alice"}
        assert client.get("/stats", headers=one).ok
        assert client.get("/stats", headers=one).ok
        limited = client.get("/stats", headers=one)
        assert limited.status == 429
        assert int(limited.headers["retry-after"]) >= 1
        # A different client has its own bucket.
        assert client.get("/stats", headers={CLIENT_HEADER: "bob"}).ok

    def test_rate_limit_off_by_default(self):
        client = Client(_api(), root="/api/v1")
        for _ in range(20):
            assert client.get("/stats").ok

    def test_env_configuration(self, monkeypatch):
        monkeypatch.setenv("CARCS_RATE_LIMIT", "1")
        monkeypatch.setenv("CARCS_RATE_BURST", "1")
        client = Client(_api(), root="/api/v1")
        assert client.get("/stats").ok
        assert client.get("/stats").status == 429

    def test_exempt_paths_never_shed(self):
        client = Client(_api(rate_limit=1.0, rate_burst=1.0), root="/api/v1")
        for _ in range(5):
            assert client.get("/healthz").ok
            assert client.get("/metrics").ok


class TestInflightCap:
    def test_cap_sheds_the_overload_request(self):
        admission = AdmissionMiddleware(max_inflight=1)
        entered = threading.Event()
        release = threading.Event()

        def blocked(request):
            entered.set()
            release.wait(timeout=5)
            return json_response({"ok": True})

        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                admission(Request.build("GET", "/x"), blocked)
            )
        )
        thread.start()
        assert entered.wait(timeout=5)
        shed = admission(
            Request.build("GET", "/x"), lambda request: json_response(None)
        )
        release.set()
        thread.join(timeout=5)
        assert shed.status == 503
        assert shed.headers["retry-after"] == "1"
        assert results[0].ok
        stats = admission.stats()
        assert stats["shed_inflight"] == 1
        assert stats["inflight"] == 0

    def test_metrics_gauge_tracks_inflight(self):
        metrics = MetricsRegistry()
        admission = AdmissionMiddleware(metrics, max_inflight=4)
        admission(Request.build("GET", "/x"),
                  lambda request: json_response(None))
        assert metrics.gauge("carcs_inflight_requests").value == 0


class TestFrontTierPropagation:
    def test_deadline_header_rewritten_to_remaining_budget(self):
        seen = {}

        def backend_app(request):
            seen["deadline"] = request.header(DEADLINE_HEADER)
            return json_response({"ok": True})

        front = FrontTier(LocalBackend("primary", backend_app))
        response = front(Request.build(
            "GET", "/api/v1/stats", headers={DEADLINE_HEADER: "5000"}
        ))
        assert response.ok
        forwarded = float(seen["deadline"])
        assert 0 < forwarded <= 5000

    def test_front_tier_sheds_expired_deadline_without_a_hop(self):
        calls = []

        def backend_app(request):
            calls.append(request.path)
            return json_response({"ok": True})

        front = FrontTier(LocalBackend("primary", backend_app))
        response = front(Request.build(
            "GET", "/api/v1/stats", headers={DEADLINE_HEADER: "-1"}
        ))
        assert response.status == 503
        assert calls == []
        assert front.status()["admission"]["shed_deadline"] == 1

    def test_front_tier_rate_limit(self):
        front = FrontTier(
            LocalBackend("primary", lambda r: json_response({"ok": True})),
            rate_limit=1.0, rate_burst=1.0,
        )
        first = front(Request.build("GET", "/api/v1/stats"))
        second = front(Request.build("GET", "/api/v1/stats"))
        assert first.ok
        assert second.status == 429

    def test_fleet_status_is_exempt(self):
        front = FrontTier(
            LocalBackend("primary", lambda r: json_response({"ok": True})),
            rate_limit=1.0, rate_burst=1.0,
        )
        for _ in range(5):
            assert front(Request.build("GET", "/api/v1/fleet")).ok


class TestObservability:
    def test_admission_stats_export_as_gauges(self):
        api = _api(rate_limit=1.0, rate_burst=1.0)
        client = Client(api, root="/api/v1")
        assert client.get("/stats").ok
        assert client.get("/stats").status == 429
        gauges = client.get("/metrics").payload["metrics"]["gauges"]
        assert gauges["carcs_admission_shed_rate"]["value"] == 1
        assert "carcs_admission_inflight" in gauges

    def test_shed_counter_labels_reason(self):
        api = _api(rate_limit=1.0, rate_burst=1.0)
        client = Client(api, root="/api/v1")
        client.get("/stats")
        client.get("/stats")
        counters = api.metrics.export()["counters"]
        assert any(
            key.startswith("carcs_shed_total") and "rate-limit" in key
            for key in counters
        )
