"""The CAR-CS REST API end to end (Figure 1 flows + figure resources)."""

import pytest

from repro.core.repository import Repository
from repro.corpus import keys as K
from repro.corpus.seed import seed_all, seed_ontologies
from repro.web import CarCsApi, Client


@pytest.fixture(scope="module")
def client():
    """A seeded, module-scoped API client pinned to the v1 surface.

    Mutating tests create their own materials and clean up via DELETE.
    """
    return Client(CarCsApi(seed_all()), root="/api/v1")


@pytest.fixture()
def empty_client():
    repo = Repository()
    seed_ontologies(repo)
    return Client(CarCsApi(repo), root="/api/v1")


class TestAssignmentCrud:
    def test_create_read_update_delete(self, empty_client):
        created = empty_client.post("/assignments", body={
            "title": "Prefix sums",
            "description": "Implement an inclusive scan",
            "collection": "demo",
            "languages": ["C"],
            "classifications": [
                {"ontology": "PDC12", "key": K.A_SCAN},
                {"ontology": "CS13", "key": K.PD_PATTERNS, "bloom": "usage"},
            ],
        })
        assert created.status == 201
        mid = created.json()["id"]
        assert len(created.json()["classifications"]) == 2

        fetched = empty_client.get(f"/assignments/{mid}")
        assert fetched.json()["title"] == "Prefix sums"
        blooms = {
            c["key"]: c["bloom"] for c in fetched.json()["classifications"]
        }
        assert blooms[K.PD_PATTERNS] == "usage"

        updated = empty_client.patch(
            f"/assignments/{mid}", body={"title": "Scan lab"}
        )
        assert updated.json()["title"] == "Scan lab"

        deleted = empty_client.delete(f"/assignments/{mid}")
        assert deleted.ok
        assert empty_client.get(f"/assignments/{mid}").status == 404

    def test_create_requires_title(self, empty_client):
        assert empty_client.post("/assignments", body={}).status == 400

    def test_create_rejects_bad_classification(self, empty_client):
        r = empty_client.post("/assignments", body={
            "title": "X",
            "classifications": [{"ontology": "CS13", "key": "CS13/NOPE"}],
        })
        assert r.status == 400

    def test_create_rejects_bad_bloom(self, empty_client):
        r = empty_client.post("/assignments", body={
            "title": "X",
            "classifications": [
                {"ontology": "CS13", "key": K.SDF_ARRAYS, "bloom": "wizard"}
            ],
        })
        assert r.status == 400

    def test_patch_rejects_unknown_fields(self, empty_client):
        created = empty_client.post("/assignments", body={"title": "Y"})
        mid = created.json()["id"]
        r = empty_client.patch(f"/assignments/{mid}", body={"kind": "exam"})
        assert r.status == 400

    def test_get_missing_material(self, empty_client):
        assert empty_client.get("/assignments/999").status == 404


class TestClassificationEditing:
    def test_add_and_remove_classification(self, empty_client):
        mid = empty_client.post(
            "/assignments", body={"title": "Z"}
        ).json()["id"]
        added = empty_client.post(
            f"/assignments/{mid}/classifications",
            body={"ontology": "CS13", "key": K.SDF_ARRAYS},
        )
        assert added.status == 201
        assert added.json()["classifications"][0]["key"] == K.SDF_ARRAYS

        removed = empty_client.delete(
            f"/assignments/{mid}/classifications?key={K.SDF_ARRAYS}"
        )
        assert removed.ok
        again = empty_client.delete(
            f"/assignments/{mid}/classifications?key={K.SDF_ARRAYS}"
        )
        assert again.status == 404

    def test_add_unknown_key_rejected(self, empty_client):
        mid = empty_client.post(
            "/assignments", body={"title": "W"}
        ).json()["id"]
        r = empty_client.post(
            f"/assignments/{mid}/classifications",
            body={"ontology": "CS13", "key": "CS13/FAKE"},
        )
        assert r.status == 400


class TestListingAndSearch:
    def test_list_by_collection(self, client):
        r = client.get("/assignments?collection=peachy")
        assert r.json()["total"] == 11
        assert len(r.json()["items"]) == 11

    def test_text_search_ranks(self, client):
        r = client.get("/assignments?q=hurricane+storm+track")
        titles = [x["title"] for x in r.json()["items"]]
        assert "Hurricane Tracker" in titles[:3]

    def test_filter_under_subtree(self, client):
        r = client.get("/assignments?under=PDC12/PROG&collection=nifty")
        assert r.json()["total"] == 0
        r = client.get("/assignments?under=PDC12/PROG&collection=peachy")
        assert r.json()["total"] == 11

    def test_facet_query_language_in_q(self, client):
        r = client.get("/assignments?q=collection:peachy+fire")
        titles = [x["title"] for x in r.json()["items"]]
        assert titles and all("Fire" in t for t in titles[:1])

    def test_bad_facet_yields_400(self, client):
        r = client.get("/assignments?q=nonsense:value")
        assert r.status == 400
        assert "unknown facet" in r.json()["error"]["message"]

    def test_year_facet(self, client):
        r = client.get("/assignments?q=year:2003..2004+collection:nifty")
        assert 0 < r.json()["total"] <= 5

    def test_pagination_windows_and_counts(self, client):
        full = client.get("/assignments?collection=nifty").json()
        assert full["total"] == 65
        page = client.get(
            "/assignments?collection=nifty&limit=10&offset=20"
        ).json()
        assert page["total"] == 65
        assert page["limit"] == 10 and page["offset"] == 20
        assert page["items"] == full["items"][20:30]

    def test_pagination_rejects_negative_params(self, client):
        assert client.get("/assignments?limit=-1").status == 400
        assert client.get("/assignments?offset=-5").status == 400


class TestOntologyResources:
    def test_list_ontologies(self, client):
        r = client.get("/ontologies")
        names = {o["name"] for o in r.json()["ontologies"]}
        assert names == {"CS13", "PDC12"}
        cs13 = next(o for o in r.json()["ontologies"] if o["name"] == "CS13")
        assert cs13["entries"] > 2700

    def test_entry_search_highlights_phrase(self, client):
        r = client.get("/ontologies/CS13/entries?search=critical+path")
        labels = [e["label"] for e in r.json()["items"]]
        assert any("Critical path" in l for l in labels)

    def test_entry_browse_paginates(self, client):
        first = client.get("/ontologies/PDC12/entries?limit=5").json()
        assert first["limit"] == 5 and len(first["items"]) == 5
        second = client.get("/ontologies/PDC12/entries?limit=5&offset=5").json()
        assert second["items"] != first["items"]
        assert second["total"] == first["total"] > 10

    def test_entry_search_unknown_ontology(self, client):
        assert client.get("/ontologies/NOPE/entries").status == 404


class TestFigureResources:
    def test_coverage_resource_matches_figure2(self, client):
        r = client.get("/coverage?collection=itcs3145&ontology=PDC12")
        body = r.json()
        assert body["n_materials"] == 21
        assert body["areas"][0]["label"] == "Programming"

    def test_coverage_requires_params(self, client):
        assert client.get("/coverage?collection=nifty").status == 400

    def test_coverage_unknown_collection(self, client):
        r = client.get("/coverage?collection=ghost&ontology=CS13")
        assert r.status == 404

    def test_similarity_resource_matches_figure3(self, client):
        r = client.get("/similarity?left=nifty&right=peachy&threshold=2")
        body = r.json()
        assert len(body["edges"]) == 24
        assert len(body["nodes"]) == 76
        connected = [n for n in body["nodes"] if n["degree"] > 0]
        assert len(connected) == 10

    def test_gaps_resource(self, client):
        r = client.get("/gaps?reference=nifty&candidate=peachy&ontology=CS13")
        body = r.json()
        assert 0.0 <= body["alignment"] <= 1.0
        assert body["missing_in_candidate"]

    def test_recommend_resource(self, client):
        r = client.post("/recommend", body={
            "text": "parallelize a monte carlo simulation with OpenMP",
            "selected": [K.SDF_ARRAYS],
        })
        assert r.ok
        assert r.json()["suggestions"]

    def test_recommend_requires_input(self, client):
        assert client.post("/recommend", body={}).status == 400

    def test_stats(self, client):
        r = client.get("/stats")
        assert r.json()["materials"] >= 97

    def test_variants_resource(self, client):
        # material 1 is Hurricane Tracker (cluster member)
        r = client.get("/assignments/1/variants?min_overlap=2")
        body = r.json()
        assert body["material"] == "Hurricane Tracker"
        assert body["variants"]
        assert all(v["overlap"] >= 2 for v in body["variants"])

    def test_lint_resource(self, client):
        # the sequential integrator is the corpus's one lint finding
        integrator = client.get(
            "/assignments?q=rectangle+method+collection:itcs3145"
        ).json()["items"][0]
        r = client.get(f"/assignments/{integrator['id']}/lint")
        assert r.json()["findings"][0]["rule"] == "cross-ontology"

    def test_plan_resource(self, client):
        r = client.get("/plan?ontology=PDC12&max_materials=4")
        body = r.json()
        assert len(body["picks"]) == 4
        assert 0.0 < body["coverage_ratio"] < 1.0

    def test_plan_unknown_ontology(self, client):
        assert client.get("/plan?ontology=NOPE").status == 404
