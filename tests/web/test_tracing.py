"""End-to-end request tracing through the middleware chain.

The acceptance bar of the tracing layer: every traced API request
produces a retrievable span tree crossing at least three layers (web
root span → core ``repo.``/``cache.``/``search.`` spans → ``db.``
spans), trace ids stay disjoint under a live threaded server, and the
``/api/v1/traces`` surface pages over retained traces without ever
revalidating to a 304.
"""

import json
import threading
import urllib.request

import pytest

from repro.corpus.seed import seed_all
from repro.obs import MODE_ALL, MODE_OFF, MODE_SAMPLED, TraceStore, Tracer
from repro.web import CarCsApi, Client
from repro.web.server import ApiServer

SEARCH = "/search?q=monte+carlo&limit=5"
COVERAGE = "/coverage?collection=itcs3145&ontology=PDC12"


def make_tracer(**kwargs):
    kwargs.setdefault("mode", MODE_ALL)
    kwargs.setdefault("sample_every", 1)
    kwargs.setdefault("slow_ms", 1e9)
    return Tracer(TraceStore(capacity=64), **kwargs)


@pytest.fixture(scope="module")
def repo():
    return seed_all()


@pytest.fixture()
def tracer():
    return make_tracer()


@pytest.fixture()
def api(repo, tracer):
    return CarCsApi(repo, tracer=tracer)


@pytest.fixture()
def client(api):
    return Client(api, root="/api/v1")


def span_names(tree: dict) -> set[str]:
    names = {tree["name"]}
    for child in tree["children"]:
        names |= span_names(child)
    return names


def check_parentage(tree: dict, trace_id: str) -> int:
    """Every span carries the trace id; children point at their parent.
    Returns the number of spans verified."""
    assert tree["trace_id"] == trace_id
    count = 1
    for child in tree["children"]:
        assert child["parent_id"] == tree["span_id"]
        count += check_parentage(child, trace_id)
    return count


class TestRootSpan:
    def test_trace_id_reuses_request_id_and_is_stamped(self, client):
        response = client.get("/healthz")
        assert response.headers["x-trace-id"] == \
            response.headers["x-request-id"]

    def test_inbound_request_id_becomes_the_trace_id(self, client, tracer):
        response = client.get(
            "/stats", headers={"x-request-id": "deadbeefdeadbeefdeadbeef"}
        )
        assert response.headers["x-trace-id"] == "deadbeefdeadbeefdeadbeef"
        assert tracer.store.get("deadbeefdeadbeefdeadbeef") is not None

    def test_root_span_is_named_after_the_matched_route(self, client, tracer):
        response = client.get(COVERAGE)
        record = tracer.store.get(response.headers["x-trace-id"])
        assert record.root.name == "GET /api/v1/coverage"
        assert record.root.attributes["status"] == 200

    def test_mode_off_is_a_pass_through(self, repo):
        api = CarCsApi(repo, tracer=make_tracer(mode=MODE_OFF))
        client = Client(api, root="/api/v1")
        response = client.get("/stats")
        assert response.ok
        assert "x-trace-id" not in response.headers
        assert len(api.tracer.store) == 0


class TestThreeLayerTraces:
    def test_search_trace_crosses_web_core_and_db(self, client, tracer):
        response = client.get(SEARCH)
        assert response.ok
        trace = client.get(
            f"/traces/{response.headers['x-trace-id']}"
        ).json()
        names = span_names(trace["root"])
        assert trace["root"]["name"] == "GET /api/v1/search"        # web
        assert any(n.startswith("search.") for n in names)          # core
        assert any(n.startswith("db.") for n in names)              # db
        check_parentage(trace["root"], trace["trace_id"])

    def test_coverage_trace_crosses_web_core_and_db(self, client, tracer):
        response = client.get(COVERAGE)
        trace = client.get(
            f"/traces/{response.headers['x-trace-id']}"
        ).json()
        names = span_names(trace["root"])
        assert any(n.startswith("repo.") or n.startswith("cache.")
                   for n in names)
        assert "db.snapshot.pin" in names
        assert trace["spans"] == check_parentage(
            trace["root"], trace["trace_id"]
        )

    def test_every_api_request_is_traced_in_sampled_default(self, repo):
        # CARCS_TRACE_SAMPLE defaults to 1: sampled mode retains every
        # trace until the stride is raised explicitly.
        api = CarCsApi(repo, tracer=make_tracer(mode=MODE_SAMPLED))
        client = Client(api, root="/api/v1")
        for path in ("/healthz", "/stats", SEARCH, COVERAGE):
            response = client.get(path)
            trace_id = response.headers["x-trace-id"]
            assert client.get(f"/traces/{trace_id}").ok, path

    def test_mutation_requests_carry_db_write_spans(self, client, tracer):
        created = client.post("/assignments", body={
            "title": "traced scratch", "collection": "traced-scratch",
        })
        assert created.status == 201
        trace = client.get(
            f"/traces/{created.headers['x-trace-id']}"
        ).json()
        names = span_names(trace["root"])
        assert "db.transaction" in names or "db.insert" in names
        deleted = client.delete(
            f"/assignments/{created.json()['id']}"
        )
        assert deleted.ok


class TestTracesEndpoint:
    def test_pagination_envelope_and_newest_first(self, client, tracer):
        for _ in range(3):
            client.get("/healthz")
        page = client.get("/traces?limit=2").json()
        assert page["limit"] == 2 and len(page["items"]) == 2
        assert page["total"] >= 3
        assert page["tracer"]["retained"] >= 3
        newest, second = page["items"][:2]
        assert newest["started_ts"] >= second["started_ts"]

    def test_status_filter(self, api, client):
        @api.router.route("GET", "/api/v1/boom")
        def boom(request):
            raise RuntimeError("kaboom")

        assert client.get("/boom").status == 500
        errored = client.get("/traces?status=error").json()
        assert errored["total"] >= 1
        assert all(s["status"] == "error" for s in errored["items"])

    def test_unknown_trace_is_a_clean_404(self, client):
        response = client.get("/traces/nope")
        assert response.status == 404
        assert response.error["code"] == 404

    def test_traces_never_304(self, client):
        first = client.get("/traces")
        assert "etag" not in first.headers
        revalidated = client.get(
            "/traces", headers={"if-none-match": '"carcs-v0"'}
        )
        assert revalidated.status == 200
        listed = client.get("/traces").json()
        trace_id = listed["items"][0]["trace_id"]
        detail = client.get(
            f"/traces/{trace_id}", headers={"if-none-match": "*"}
        )
        assert detail.status == 200  # nested path inherits the exemption

    def test_error_traces_survive_an_aggressive_sampler(self, repo):
        api = CarCsApi(
            repo, tracer=make_tracer(mode=MODE_SAMPLED, sample_every=10**6)
        )
        client = Client(api, root="/api/v1")

        @api.router.route("GET", "/api/v1/boom")
        def boom(request):
            raise RuntimeError("kaboom")

        client.get("/healthz")       # first request: head-sampled
        client.get("/stats")         # sampled out
        failed = client.get("/boom")
        assert failed.status == 500
        record = api.tracer.store.get(failed.headers["x-trace-id"])
        assert record is not None
        assert record.retained_by == "error"
        assert record.root.status == "error"


class TestMetricsIntegration:
    def test_span_histograms_and_exemplars_in_metrics_json(
        self, client, tracer
    ):
        traced = client.get(SEARCH)
        body = client.get("/metrics").json()
        hists = body["metrics"]["histograms"]
        assert any(
            key.startswith("carcs_span_seconds") for key in hists
        )
        exemplars = body["exemplars"]
        assert tracer.store.get(exemplars["search.query"]) is not None
        gauges = body["metrics"]["gauges"]
        assert gauges["carcs_traces_retained"]["value"] >= 1
        assert traced.headers["x-trace-id"] in set(exemplars.values())

    def test_prometheus_exposition(self, client):
        client.get("/stats")
        response = client.get("/metrics?format=prometheus")
        assert response.ok
        assert response.headers["content-type"].startswith("text/plain")
        text = response.payload
        assert isinstance(text, str)
        assert "# TYPE http_requests_total counter" in text
        assert 'route="GET /api/v1/stats"' in text
        assert "http_request_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert "http_request_seconds_count" in text


class TestConcurrentTracing:
    def test_parallel_requests_get_disjoint_well_formed_traces(self, repo):
        api = CarCsApi(repo, tracer=make_tracer())
        workers = 6
        trace_ids: list[str] = []
        failures: list[object] = []
        sink = threading.Lock()

        with ApiServer(api, port=0, threaded=True) as srv:
            def hammer(worker: int):
                path = SEARCH if worker % 2 else COVERAGE
                try:
                    for _ in range(4):
                        with urllib.request.urlopen(
                            f"{srv.url}/api/v1{path}", timeout=30
                        ) as response:
                            assert response.status == 200
                            with sink:
                                trace_ids.append(
                                    response.headers["x-trace-id"]
                                )
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(w,))
                for w in range(workers)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not any(t.is_alive() for t in threads), "worker hung"
            assert failures == []

            # Disjoint ids: no request ever wrote into another's trace.
            assert len(set(trace_ids)) == len(trace_ids) == workers * 4

            # Every trace is retrievable and internally consistent.
            for trace_id in trace_ids:
                with urllib.request.urlopen(
                    f"{srv.url}/api/v1/traces/{trace_id}", timeout=30
                ) as response:
                    trace = json.loads(response.read())
                assert trace["spans"] == check_parentage(
                    trace["root"], trace_id
                )
                names = span_names(trace["root"])
                assert "db.snapshot.pin" in names
                assert any(
                    n.split(".", 1)[0] in ("search", "repo", "cache")
                    for n in names
                )
