"""Routing semantics: matching, params, 404/405."""

from repro.web.http import HttpError, Request, json_response
from repro.web.router import Router


def make_router():
    router = Router()

    @router.route("GET", "/things")
    def list_things(request):
        return json_response(["a", "b"])

    @router.route("GET", "/things/<int:id>")
    def get_thing(request):
        return json_response({"id": request.params["id"]})

    @router.route("POST", "/things")
    def create_thing(request):
        return json_response({"created": True}, status=201)

    @router.route("GET", "/by-name/<name>")
    def by_name(request):
        return json_response({"name": request.params["name"]})

    @router.route("GET", "/boom")
    def boom(request):
        raise HttpError(418, "teapot")

    return router


class TestDispatch:
    def test_static_route(self):
        r = make_router().dispatch(Request.build("GET", "/things"))
        assert r.json() == ["a", "b"]

    def test_int_param_extracted(self):
        # <int:...> params are converted by the router: handlers get ints.
        r = make_router().dispatch(Request.build("GET", "/things/42"))
        assert r.json() == {"id": 42}

    def test_int_param_rejects_non_numeric(self):
        r = make_router().dispatch(Request.build("GET", "/things/abc"))
        assert r.status == 404

    def test_str_param(self):
        r = make_router().dispatch(Request.build("GET", "/by-name/uno"))
        assert r.json() == {"name": "uno"}

    def test_str_param_does_not_cross_slashes(self):
        r = make_router().dispatch(Request.build("GET", "/by-name/a/b"))
        assert r.status == 404

    def test_trailing_slash_tolerated(self):
        r = make_router().dispatch(Request.build("GET", "/things/"))
        assert r.ok

    def test_404_for_unknown_path(self):
        r = make_router().dispatch(Request.build("GET", "/nope"))
        assert r.status == 404

    def test_405_for_wrong_method(self):
        r = make_router().dispatch(Request.build("DELETE", "/things"))
        assert r.status == 405

    def test_method_routing(self):
        r = make_router().dispatch(Request.build("POST", "/things"))
        assert r.status == 201

    def test_http_error_becomes_response(self):
        r = make_router().dispatch(Request.build("GET", "/boom"))
        assert r.status == 418
        assert r.json()["error"]["message"] == "teapot"
        assert r.json()["error"]["code"] == 418

    def test_routes_listing(self):
        table = make_router().routes()
        assert ("GET", "/things") in [(r.method, r.pattern) for r in table]

    def test_deprecated_route_gets_header(self):
        router = make_router()
        router.add(
            "GET", "/old-things",
            lambda request: json_response(["a"]), deprecated=True,
        )
        r = router.dispatch(Request.build("GET", "/old-things"))
        assert r.ok
        assert r.headers["deprecation"] == "true"
        # Canonical routes carry no deprecation header.
        fresh = router.dispatch(Request.build("GET", "/things"))
        assert "deprecation" not in fresh.headers

    def test_typed_param_conversion_in_dispatch(self):
        captured = {}

        router = Router()

        @router.route("GET", "/pair/<int:left>/<right>")
        def pair(request):
            captured.update(request.params)
            return json_response(None)

        router.dispatch(Request.build("GET", "/pair/7/seven"))
        assert captured == {"left": 7, "right": "seven"}
        assert isinstance(captured["left"], int)
