"""Request/Response primitives."""

import pytest

from repro.web.http import HttpError, Request, error_response, json_response


class TestRequest:
    def test_build_parses_path_and_query(self):
        r = Request.build("get", "/assignments?collection=nifty&limit=5")
        assert r.method == "GET"
        assert r.path == "/assignments"
        assert r.query == {"collection": ["nifty"], "limit": ["5"]}

    def test_query_one_default(self):
        r = Request.build("GET", "/x")
        assert r.query_one("missing") is None
        assert r.query_one("missing", "d") == "d"

    def test_query_int(self):
        r = Request.build("GET", "/x?n=7")
        assert r.query_int("n") == 7
        assert r.query_int("m", 3) == 3

    def test_query_int_rejects_garbage(self):
        r = Request.build("GET", "/x?n=abc")
        with pytest.raises(HttpError) as exc:
            r.query_int("n")
        assert exc.value.status == 400

    def test_json_parses_string_body(self):
        r = Request.build("POST", "/x", body='{"a": 1}')
        assert r.json() == {"a": 1}

    def test_json_accepts_dict_body(self):
        r = Request.build("POST", "/x", body={"a": 1})
        assert r.json() == {"a": 1}

    def test_json_rejects_missing_body(self):
        r = Request.build("POST", "/x")
        with pytest.raises(HttpError):
            r.json()

    def test_json_rejects_malformed(self):
        r = Request.build("POST", "/x", body="{nope")
        with pytest.raises(HttpError):
            r.json()

    def test_json_rejects_non_object(self):
        r = Request.build("POST", "/x", body="[1, 2]")
        with pytest.raises(HttpError):
            r.json()

    def test_empty_path_becomes_root(self):
        assert Request.build("GET", "").path == "/"


class TestResponse:
    def test_json_response_serializable_payload(self):
        r = json_response({"x": 1})
        assert r.ok
        assert r.json() == {"x": 1}
        assert r.headers["content-type"] == "application/json"

    def test_json_response_coerces_exotic_types(self):
        from enum import Enum

        class E(Enum):
            A = "a"

        r = json_response({"e": E.A})
        assert isinstance(r.json()["e"], str)

    def test_error_response(self):
        r = error_response(404, "missing")
        assert not r.ok
        assert r.status == 404
        assert r.json()["error"] == {
            "code": 404, "message": "missing", "request_id": "",
        }
        assert r.error["message"] == "missing"

    def test_error_response_carries_request_id(self):
        r = error_response(500, "boom", "req-123")
        assert r.error == {
            "code": 500, "message": "boom", "request_id": "req-123",
        }

    def test_error_property_none_on_success(self):
        assert json_response({"ok": True}).error is None

    def test_text_renders_json(self):
        assert '"x": 1' in json_response({"x": 1}).text()
