"""The ``/api/v2`` surface: resources, cursors, async jobs, the shim."""

from __future__ import annotations

import pytest

from repro.core.classification import ClassificationSet
from repro.core.material import Material, MaterialKind
from repro.core.repository import Repository
from repro.corpus import keys as K
from repro.corpus.seed import seed_all, seed_ontologies
from repro.jobs import run_pending
from repro.web import CarCsApi, Client
from repro.web.api import API_V2_PREFIX, V1_SUNSET


@pytest.fixture(scope="module")
def api():
    return CarCsApi(seed_all())


@pytest.fixture(scope="module")
def client(api):
    return Client(api, root=API_V2_PREFIX)


@pytest.fixture()
def empty_api():
    repo = Repository()
    seed_ontologies(repo)
    return CarCsApi(repo)


@pytest.fixture()
def empty_client(empty_api):
    return Client(empty_api, root=API_V2_PREFIX)


def _add_unclassified(repo, *, collection="inbox"):
    keys = repo.classification_keys()
    template = repo.get_material(
        next(mid for mid in sorted(keys) if keys[mid])
    )
    clone = Material(
        title=f"Incoming copy of {template.title}",
        description=template.description,
        kind=MaterialKind.ASSIGNMENT,
        languages=template.languages,
        tags=template.tags,
        collection=collection,
    )
    return repo.add_material(clone, ClassificationSet())


class TestIndexAndShim:
    def test_v2_index_lists_only_v2_routes(self, client):
        body = client.get("/").json()
        assert body["api_version"] == "v2"
        assert all(
            r["path"].startswith(API_V2_PREFIX) for r in body["routes"]
        )
        assert {"method": "POST", "path": f"{API_V2_PREFIX}/jobs/classify"} \
            in body["routes"]

    def test_v2_routes_carry_no_sunset_or_deprecation(self, client):
        response = client.get("/ontologies")
        assert response.ok
        assert "sunset" not in response.headers
        assert "deprecation" not in response.headers

    def test_v1_routes_carry_sunset_header(self, api):
        v1 = Client(api, root="/api/v1")
        response = v1.get("/ontologies")
        assert response.ok
        assert response.headers["sunset"] == V1_SUNSET
        assert "deprecation" not in response.headers
        index = v1.get("/").json()
        assert index["successor"] == API_V2_PREFIX
        assert index["sunset"] == V1_SUNSET

    def test_v1_and_v2_reads_agree(self, api):
        v1 = Client(api, root="/api/v1")
        v2 = Client(api, root=API_V2_PREFIX)
        left = v1.get("/coverage?collection=nifty&ontology=CS13").json()
        right = v2.get("/coverage?collection=nifty&ontology=CS13").json()
        assert left == right

    def test_ops_endpoints_serve_on_v2(self, client):
        assert client.get("/healthz").json()["status"] == "ok"
        metrics = client.get("/metrics").json()["metrics"]
        gauges = metrics["gauges"]
        assert any(k.startswith("carcs_jobs{") for k in gauges)


class TestCursorPagination:
    def test_walks_all_pages_without_overlap(self, client):
        total = client.get("/materials?limit=0").json()["total"]
        assert total > 4
        seen, cursor, pages = [], None, 0
        while True:
            url = "/materials?limit=4" + (
                f"&cursor={cursor}" if cursor else ""
            )
            page = client.get(url).json()
            assert page["limit"] == 4
            assert page["total"] == total
            seen.extend(item["id"] for item in page["items"])
            pages += 1
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert len(seen) == total
        assert len(set(seen)) == total            # no overlap between pages
        assert pages == -(-total // 4)

    def test_invalid_cursor_is_400(self, client):
        response = client.get("/materials?cursor=not-a-cursor")
        assert response.status == 400
        assert "cursor" in response.error["message"]

    def test_negative_limit_is_400(self, client):
        assert client.get("/materials?limit=-1").status == 400

    def test_entries_listing_uses_cursor_envelope(self, client):
        page = client.get("/ontologies/PDC12/entries?limit=5").json()
        assert set(page) == {"items", "total", "limit", "next_cursor"}
        assert len(page["items"]) == 5
        assert page["next_cursor"]


class TestMaterialsResource:
    def test_create_sets_location_and_nested_classifications(
        self, empty_client
    ):
        created = empty_client.post("/materials", body={
            "title": "Prefix sums",
            "collection": "demo",
            "classifications": [{"ontology": "PDC12", "key": K.A_SCAN}],
        })
        assert created.status == 201
        mid = created.json()["id"]
        assert created.headers["location"] == \
            f"{API_V2_PREFIX}/materials/{mid}"

        nested = empty_client.get(f"/materials/{mid}/classifications").json()
        assert [i["key"] for i in nested["items"]] == [K.A_SCAN]

        added = empty_client.post(
            f"/materials/{mid}/classifications",
            body={"ontology": "CS13", "key": K.PD_PATTERNS},
        )
        assert added.status == 201
        removed = empty_client.delete(
            f"/materials/{mid}/classifications?key={K.A_SCAN}"
        )
        assert removed.ok
        left = empty_client.get(f"/materials/{mid}/classifications").json()
        assert [i["key"] for i in left["items"]] == [K.PD_PATTERNS]

    def test_unknown_material_404s(self, client):
        assert client.get("/materials/999999").status == 404


class TestJobsAndSuggestions:
    """The tentpole end to end: enqueue -> drain -> review -> analytics."""

    def test_classify_flow_updates_coverage(self, empty_api, empty_client):
        repo = empty_api.repo
        # A tiny training corpus: two classified materials.
        for title, key in (
            ("MPI ring benchmark", K.A_SCAN),
            ("MPI halo exchange", K.A_SCAN),
        ):
            cs = ClassificationSet()
            cs.add("PDC12", key)
            repo.add_material(
                Material(title=title,
                         description="message passing over ranks",
                         kind=MaterialKind.ASSIGNMENT,
                         collection="train"),
                cs,
            )
        stored = repo.add_material(
            Material(title="MPI ring benchmark again",
                     description="message passing over ranks",
                     kind=MaterialKind.ASSIGNMENT,
                     collection="inbox"),
            ClassificationSet(),
        )

        accepted = empty_client.post("/jobs/classify", body={
            "collection": "inbox", "idempotency_key": "sweep",
        })
        assert accepted.status == 202
        job_id = accepted.json()["job"]["id"]
        assert accepted.headers["location"] == \
            f"{API_V2_PREFIX}/jobs/{job_id}"
        assert accepted.headers["retry-after"] == "1"
        # Re-posting with the same idempotency key files no second job.
        again = empty_client.post("/jobs/classify", body={
            "collection": "inbox", "idempotency_key": "sweep",
        })
        assert again.json()["job"]["id"] == job_id

        polled = empty_client.get(f"/jobs/{job_id}")
        assert polled.json()["status"] == "queued"
        assert polled.headers["retry-after"] == "1"

        assert run_pending(empty_api.queue, empty_api.job_handlers) == 1
        done = empty_client.get(f"/jobs/{job_id}")
        assert done.json()["status"] == "done"
        assert "retry-after" not in done.headers
        assert done.json()["result"]["suggested"] >= 1

        pending = empty_client.get(
            f"/suggestions?status=pending&material_id={stored.id}"
        ).json()
        assert pending["items"]
        best = pending["items"][0]
        assert best["origin"] == "machine"
        assert best["confidence"] is not None

        before = empty_client.get(
            "/coverage?collection=inbox&ontology=PDC12"
        ).json()
        assert before["entries_touched"] == 0
        review = empty_client.post(f"/suggestions/{best['id']}/accept")
        assert review.json()["status"] == "approved"
        after = empty_client.get(
            "/coverage?collection=inbox&ontology=PDC12"
        ).json()
        assert after["entries_touched"] > 0

        # A second accept of the same suggestion conflicts.
        assert empty_client.post(
            f"/suggestions/{best['id']}/accept"
        ).status == 409

    def test_jobs_listing_filters_by_status(self, empty_api, empty_client):
        empty_client.post("/jobs/classify", body={})
        listing = empty_client.get("/jobs?status=queued").json()
        assert listing["items"]
        assert all(j["status"] == "queued" for j in listing["items"])
        assert empty_client.get("/jobs?status=done").json()["items"] == []

    def test_unknown_job_404s(self, empty_client):
        assert empty_client.get("/jobs/12345").status == 404

    def test_queue_saturation_answers_429(self):
        repo = Repository()
        seed_ontologies(repo)
        api = CarCsApi(repo, max_queued_jobs=1)
        client = Client(api, root=API_V2_PREFIX)
        assert client.post("/jobs/classify", body={}).status == 202
        shed = client.post("/jobs/classify", body={})
        assert shed.status == 429
        assert shed.headers["retry-after"] == "1"
        assert shed.error["code"] == 429
        counters = api.metrics.export()["counters"]
        assert counters[
            'carcs_shed_total{reason="queue-full",status="429"}'
        ]["value"] == 1

    def test_suggestion_batch_review(self, empty_api, empty_client):
        repo = empty_api.repo
        cs = ClassificationSet()
        cs.add("PDC12", K.A_SCAN)
        repo.add_material(
            Material(title="scan lab", description="prefix sums",
                     kind=MaterialKind.ASSIGNMENT, collection="train"),
            cs,
        )
        target = repo.add_material(
            Material(title="scan lab copy", description="prefix sums",
                     kind=MaterialKind.ASSIGNMENT, collection="inbox"),
            ClassificationSet(),
        )
        empty_client.post("/jobs/classify", body={
            "material_ids": [target.id],
        })
        run_pending(empty_api.queue, empty_api.job_handlers)
        ids = [
            s["id"] for s in empty_client.get(
                f"/suggestions?material_id={target.id}"
            ).json()["items"]
        ]
        assert ids
        body = {"ids": ids + [99999]}
        result = empty_client.post("/suggestions/reject", body=body).json()
        assert result["rejected"] == ids
        assert result["failed"] == [
            {"id": 99999, "error": "no suggestion with id 99999"}
        ]
        # Everything already reviewed: batch accept reports conflicts.
        redo = empty_client.post(
            "/suggestions/accept", body={"ids": ids}
        ).json()
        assert redo["accepted"] == []
        assert len(redo["failed"]) == len(ids)

    def test_batch_review_requires_int_ids(self, empty_client):
        assert empty_client.post(
            "/suggestions/accept", body={"ids": "1,2"}
        ).status == 400
