"""Concurrent smoke test: mixed readers and writers over real HTTP.

The acceptance bar for the threaded pipeline: hammer a live
:class:`ThreadingHTTPServer` with interleaved mutations and analytics
reads, then prove every analytics payload served under contention is
byte-equal to a single-threaded recomputation on the final state.
"""

import json
import threading
import urllib.request

from repro.core.material import Material
from repro.corpus.seed import seed_all
from repro.web import CarCsApi, Client
from repro.web.server import ApiServer

WORKERS = 6
ROUNDS = 8

COVERAGE = "/api/v1/coverage?collection=itcs3145&ontology=PDC12"
SIMILARITY = "/api/v1/similarity?left=nifty&right=peachy"


def fetch(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


def post(url: str, payload: dict) -> tuple[int, bytes]:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"content-type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read()


def delete(url: str) -> int:
    request = urllib.request.Request(url, method="DELETE")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status


class TestConcurrentSmoke:
    def test_mixed_readers_and_writers(self):
        repo = seed_all()
        api = CarCsApi(repo)
        failures = []
        coverage_bodies = []
        similarity_bodies = []
        sink_lock = threading.Lock()

        with ApiServer(api, port=0, threaded=True) as srv:
            def writer(worker: int):
                # Mutations confined to a scratch collection so the
                # analytics queries above never see them.
                for i in range(ROUNDS):
                    status, body = post(f"{srv.url}/api/v1/assignments", {
                        "title": f"smoke {worker}-{i}",
                        "collection": "smoke",
                    })
                    if status != 201:
                        failures.append(("post", status))
                        return
                    mid = json.loads(body)["id"]
                    if delete(f"{srv.url}/api/v1/assignments/{mid}") != 200:
                        failures.append(("delete", mid))

            def reader(worker: int):
                for i in range(ROUNDS):
                    path = COVERAGE if (worker + i) % 2 else SIMILARITY
                    status, body = fetch(srv.url + path)
                    if status != 200:
                        failures.append((path, status))
                        return
                    with sink_lock:
                        (coverage_bodies if path == COVERAGE
                         else similarity_bodies).append(body)

            threads = (
                [threading.Thread(target=writer, args=(w,))
                 for w in range(WORKERS // 2)]
                + [threading.Thread(target=reader, args=(w,))
                   for w in range(WORKERS)]
            )
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not any(t.is_alive() for t in threads), "worker hung"
            assert failures == []
            assert coverage_bodies and similarity_bodies

            # Every payload served under contention must be byte-equal
            # to a fresh single-threaded recomputation on the settled
            # repository (same server, now quiescent, cold cache).
            repo.cache.clear()
            _, expected_coverage = fetch(srv.url + COVERAGE)
            repo.cache.clear()
            _, expected_similarity = fetch(srv.url + SIMILARITY)
            assert set(coverage_bodies) == {expected_coverage}
            assert set(similarity_bodies) == {expected_similarity}

        # The scratch mutations all round-tripped: no smoke residue.
        quiet = Client(api, root="/api/v1")
        leftovers = quiet.get("/assignments?collection=smoke").json()
        assert leftovers["total"] == 0

    def test_concurrent_in_process_mutations_keep_invariants(self):
        """Belt-and-braces at the Repository layer (no HTTP): concurrent
        add/delete cycles in one collection leave counts intact."""
        repo = seed_all()
        before = repo.material_count()
        errors = []

        def churn(worker: int):
            try:
                for i in range(ROUNDS):
                    m = repo.add_material(Material(
                        title=f"churn {worker}-{i}",
                        description="scratch",
                        collection="churn",
                    ))
                    repo.delete_material(m.id)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(w,)) for w in range(WORKERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert errors == []
        assert repo.material_count() == before
