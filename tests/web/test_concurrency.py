"""Concurrent smoke test: mixed readers and writers over real HTTP.

The acceptance bar for the threaded pipeline: hammer a live
:class:`ThreadingHTTPServer` with interleaved mutations and analytics
reads, then prove every analytics payload served under contention is
byte-equal to a single-threaded recomputation on the final state.
"""

import json
import threading
import urllib.request

from repro.core.material import Material
from repro.corpus.seed import seed_all
from repro.web import CarCsApi, Client
from repro.web.server import ApiServer

WORKERS = 6
ROUNDS = 8

COVERAGE = "/api/v1/coverage?collection=itcs3145&ontology=PDC12"
SIMILARITY = "/api/v1/similarity?left=nifty&right=peachy"


def fetch(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read()


def post(url: str, payload: dict) -> tuple[int, bytes]:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST",
        headers={"content-type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.read()


def delete(url: str) -> int:
    request = urllib.request.Request(url, method="DELETE")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status


class TestConcurrentSmoke:
    def test_mixed_readers_and_writers(self):
        repo = seed_all()
        api = CarCsApi(repo)
        failures = []
        coverage_bodies = []
        similarity_bodies = []
        sink_lock = threading.Lock()

        with ApiServer(api, port=0, threaded=True) as srv:
            def writer(worker: int):
                # Mutations confined to a scratch collection so the
                # analytics queries above never see them.
                for i in range(ROUNDS):
                    status, body = post(f"{srv.url}/api/v1/assignments", {
                        "title": f"smoke {worker}-{i}",
                        "collection": "smoke",
                    })
                    if status != 201:
                        failures.append(("post", status))
                        return
                    mid = json.loads(body)["id"]
                    if delete(f"{srv.url}/api/v1/assignments/{mid}") != 200:
                        failures.append(("delete", mid))

            def reader(worker: int):
                for i in range(ROUNDS):
                    path = COVERAGE if (worker + i) % 2 else SIMILARITY
                    status, body = fetch(srv.url + path)
                    if status != 200:
                        failures.append((path, status))
                        return
                    with sink_lock:
                        (coverage_bodies if path == COVERAGE
                         else similarity_bodies).append(body)

            threads = (
                [threading.Thread(target=writer, args=(w,))
                 for w in range(WORKERS // 2)]
                + [threading.Thread(target=reader, args=(w,))
                   for w in range(WORKERS)]
            )
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not any(t.is_alive() for t in threads), "worker hung"
            assert failures == []
            assert coverage_bodies and similarity_bodies

            # Every payload served under contention must be byte-equal
            # to a fresh single-threaded recomputation on the settled
            # repository (same server, now quiescent, cold cache).
            repo.cache.clear()
            _, expected_coverage = fetch(srv.url + COVERAGE)
            repo.cache.clear()
            _, expected_similarity = fetch(srv.url + SIMILARITY)
            assert set(coverage_bodies) == {expected_coverage}
            assert set(similarity_bodies) == {expected_similarity}

        # The scratch mutations all round-tripped: no smoke residue.
        quiet = Client(api, root="/api/v1")
        leftovers = quiet.get("/assignments?collection=smoke").json()
        assert leftovers["total"] == 0

    def test_get_path_never_acquires_the_read_lock(self, seeded_repo):
        """The MVCC contract: GETs pin a snapshot and take **no lock**.
        Any ``RWLock.acquire_read`` on the read path is a regression."""
        api = CarCsApi(seeded_repo)
        client = Client(api, root="/api/v1")
        lock = seeded_repo.db.lock
        acquires = []
        original = lock.acquire_read

        def counting_acquire():
            acquires.append(1)
            original()

        lock.acquire_read = counting_acquire
        try:
            for path in (
                "/healthz",
                "/stats",
                "/metrics",
                "/assignments",
                "/assignments/1",
                "/search?q=monte+carlo",
                "/coverage?collection=itcs3145&ontology=PDC12",
                "/similarity?left=nifty&right=peachy",
                "/ontologies",
                "/recommendations-not-a-route",   # 404 path included
            ):
                response = client.get(path)
                assert response.status in (200, 404)
        finally:
            del lock.acquire_read
        assert acquires == [], "GET dispatch acquired the read lock"

    def test_reads_see_one_snapshot_while_bulk_commit_lands(self, bare_repo):
        """Readers racing a bulk-seed transaction must serve a payload
        byte-equal to the state before the commit or after it — never a
        partially applied mix."""
        repo = bare_repo
        api = CarCsApi(repo)
        client = Client(api, root="/api/v1")
        listing = "/assignments?collection=bulk&limit=500"

        first = client.get(listing)
        before = first.text()
        assert first.json()["total"] == 0

        start = threading.Event()
        bodies: list[str] = []
        statuses: list[int] = []
        sink = threading.Lock()

        def reader(worker: int):
            start.wait(10)
            for _ in range(40):
                response = client.get(listing)
                with sink:
                    statuses.append(response.status)
                    bodies.append(response.text())

        def bulk_writer():
            start.wait(10)
            # One transaction, many rows: commits as a single frame, so
            # its snapshot publish is a single atomic pointer swap.
            with repo.db.transaction():
                for i in range(150):
                    repo.add_material(Material(
                        title=f"bulk {i:03d}",
                        description="seeded mid-read",
                        collection="bulk",
                    ))

        threads = [threading.Thread(target=reader, args=(w,))
                   for w in range(4)] + [threading.Thread(target=bulk_writer)]
        for t in threads:
            t.start()
        start.set()
        for t in threads:
            t.join(60)
        assert not any(t.is_alive() for t in threads), "worker hung"
        assert set(statuses) == {200}

        final = client.get(listing)
        after = final.text()
        assert final.json()["total"] == 150
        stray = [b for b in bodies if b not in (before, after)]
        assert stray == [], (
            f"{len(stray)} response(s) mixed pre- and post-commit state"
        )

    def test_concurrent_in_process_mutations_keep_invariants(self):
        """Belt-and-braces at the Repository layer (no HTTP): concurrent
        add/delete cycles in one collection leave counts intact."""
        repo = seed_all()
        before = repo.material_count()
        errors = []

        def churn(worker: int):
            try:
                for i in range(ROUNDS):
                    m = repo.add_material(Material(
                        title=f"churn {worker}-{i}",
                        description="scratch",
                        collection="churn",
                    ))
                    repo.delete_material(m.id)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=churn, args=(w,)) for w in range(WORKERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert errors == []
        assert repo.material_count() == before
