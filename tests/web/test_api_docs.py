"""The checked-in API reference must match the live route table."""

import importlib.util
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _load_generator():
    path = REPO_ROOT / "scripts" / "gen_api_docs.py"
    spec = importlib.util.spec_from_file_location("gen_api_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_api_md_is_in_sync_with_route_table():
    gen = _load_generator()
    on_disk = (REPO_ROOT / "docs" / "api.md").read_text()
    assert on_disk == gen.render(), (
        "docs/api.md is stale — regenerate with: "
        "PYTHONPATH=src python scripts/gen_api_docs.py"
    )


def test_every_canonical_route_is_documented():
    from repro.core.repository import Repository
    from repro.web.api import API_V2_PREFIX, CarCsApi

    text = (REPO_ROOT / "docs" / "api.md").read_text()
    documented = set(re.findall(r"^### `(\w+) ([^`]+)`", text, re.MULTILINE))
    api = CarCsApi(Repository())
    live = {
        (r.method, r.pattern) for r in api.router.routes()
        if not r.deprecated and r.pattern.startswith(API_V2_PREFIX)
    }
    assert documented == live


def test_migration_table_covers_every_v1_route():
    from repro.core.repository import Repository
    from repro.web.api import API_PREFIX, CarCsApi

    text = (REPO_ROOT / "docs" / "api.md").read_text()
    migrated = set(re.findall(
        r"^\| `(\w+) (/api/v1[^`]*)` \|", text, re.MULTILINE
    ))
    api = CarCsApi(Repository())
    live_v1 = {
        (r.method, r.pattern) for r in api.router.routes()
        if not r.deprecated and r.pattern.startswith(API_PREFIX)
    }
    assert migrated == live_v1


def test_check_mode_detects_drift(tmp_path, capsys):
    gen = _load_generator()
    original = gen.OUTPUT
    try:
        gen.OUTPUT = tmp_path / "api.md"
        assert gen.main(["--check"]) == 1          # missing file -> drift
        gen.OUTPUT.write_text(gen.render())
        assert gen.main(["--check"]) == 0          # fresh copy -> in sync
        gen.OUTPUT.write_text("stale")
        assert gen.main(["--check"]) == 1
    finally:
        gen.OUTPUT = original
