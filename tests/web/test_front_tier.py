"""The front tier: write forwarding, read fan-out, session guarantees,
and backend health — driven with in-process backends and a manually
pumped replica so lag is fully controlled.
"""

import random
import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.repository import Repository
from repro.corpus.seed import seed_ontologies
from repro.db import Database, database_to_dict
from repro.replication import ReplicaApplier, frames_message, snapshot_message
from repro.web import BackendError, CarCsApi, Client, FrontTier, LocalBackend
from repro.web.front import BACKEND_HEADER, SESSION_HEADER, VERSION_HEADER
from repro.web.http import json_response


class DownBackend:
    """A backend whose node is unreachable."""

    def __init__(self, name: str) -> None:
        self.name = name

    def request(self, request):
        raise BackendError(f"{self.name}: connection refused")


class FlakyBackend(LocalBackend):
    """A LocalBackend with a kill switch."""

    def __init__(self, name, app):
        super().__init__(name, app)
        self.down = False

    def request(self, request):
        if self.down:
            raise BackendError(f"{self.name}: injected outage")
        return super().request(request)


@pytest.fixture()
def fleet():
    """A primary + one replica behind a FrontTier, with manual pumping.

    The replica's applier is never connected to a socket; committed
    frames are captured off the primary's commit hook and delivered on
    demand via ``pump(n)`` — so tests decide exactly how far the replica
    lags at any moment.
    """
    primary_repo = Repository()
    seed_ontologies(primary_repo)
    primary_api = CarCsApi(primary_repo)

    bootstrap = database_to_dict(primary_repo.db)
    frames = []
    primary_repo.db.add_commit_listener(frames.append)

    replica_db = Database("replica")
    applier = ReplicaApplier(replica_db, ("127.0.0.1", 1))  # never dialled
    applier.handle_message(snapshot_message(bootstrap, 0.0))
    replica_repo = Repository(replica_db)
    applier.on_snapshot = replica_repo.refresh_bindings
    replica_api = CarCsApi(
        replica_repo, replication=applier, read_only=True,
        primary_url="http://primary.example:8080",
    )

    front = FrontTier(
        LocalBackend("primary", primary_api),
        [LocalBackend("replica-0", replica_api)],
        probe_cooldown=0.05,
    )
    cursor = [len(frames)]

    def pump(n=None):
        end = len(frames) if n is None else min(cursor[0] + n, len(frames))
        if end > cursor[0]:
            applier.handle_message(frames_message(
                frames[cursor[0]:end], primary_repo.db.version, time.time(),
            ))
            cursor[0] = end

    return SimpleNamespace(
        client=Client(front, root="/api/v1"),
        front=front,
        primary_repo=primary_repo,
        replica_db=replica_db,
        replica_client=Client(replica_api, root="/api/v1"),
        pump=pump,
    )


class TestWriteForwarding:
    def test_writes_land_on_the_primary(self, fleet):
        created = fleet.client.post("/assignments", body={"title": "W"})
        assert created.status == 201
        assert created.headers[BACKEND_HEADER] == "primary"
        # ...and never on the replica until pumped.
        assert fleet.replica_db.version < fleet.primary_repo.db.version
        fleet.pump()
        assert fleet.replica_db.version == fleet.primary_repo.db.version

    def test_replica_refuses_direct_writes_with_a_pointer_home(self, fleet):
        refused = fleet.replica_client.post("/assignments", body={"title": "X"})
        assert refused.status == 403
        assert refused.headers["x-carcs-primary"] == "http://primary.example:8080"
        assert "read replica" in refused.json()["error"]["message"]
        assert "http://primary.example:8080" in refused.json()["error"]["message"]


class TestSessionGuarantees:
    def test_session_read_falls_back_to_primary_while_replica_lags(self, fleet):
        session = {SESSION_HEADER: "s-1"}
        created = fleet.client.post(
            "/assignments", body={"title": "Mine"}, headers=session,
        )
        mid = created.json()["id"]
        # Replica never pumped: its version sits below the session floor.
        got = fleet.client.get(f"/assignments/{mid}", headers=session)
        assert got.status == 200
        assert got.headers[BACKEND_HEADER] == "primary"
        assert fleet.front.stale_retries >= 1
        assert int(got.headers[VERSION_HEADER]) >= int(
            created.headers[VERSION_HEADER]
        )

    def test_session_read_comes_from_replica_after_catch_up(self, fleet):
        session = {SESSION_HEADER: "s-2"}
        created = fleet.client.post(
            "/assignments", body={"title": "Mine"}, headers=session,
        )
        fleet.pump()
        got = fleet.client.get(
            f"/assignments/{created.json()['id']}", headers=session,
        )
        assert got.status == 200
        assert got.headers[BACKEND_HEADER] == "replica-0"

    def test_sessionless_reads_take_the_replica_even_when_stale(self, fleet):
        fleet.client.post("/assignments", body={"title": "Unseen"})
        listed = fleet.client.get("/assignments")
        assert listed.headers[BACKEND_HEADER] == "replica-0"
        assert int(listed.headers[VERSION_HEADER]) < fleet.primary_repo.db.version

    def test_read_your_writes_under_concurrent_writers(self, fleet):
        """Noise writers + a pump thread delivering frames in random
        chunks: a session that writes then immediately reads must always
        see its own write (200, same id), wherever the read lands."""
        stop = threading.Event()
        failures = []

        def noise(tag):
            i = 0
            while not stop.is_set():
                r = fleet.client.post(
                    "/assignments", body={"title": f"noise-{tag}-{i}"},
                )
                if r.status != 201:
                    failures.append(("write", tag, r.status))
                i += 1

        rng = random.Random(0xF0)

        def pumper():
            while not stop.is_set():
                fleet.pump(rng.randint(0, 3))
                time.sleep(0.001)

        threads = [
            threading.Thread(target=noise, args=(t,), daemon=True)
            for t in ("a", "b")
        ] + [threading.Thread(target=pumper, daemon=True)]
        for thread in threads:
            thread.start()
        session = {SESSION_HEADER: "s-ryw"}
        backends = set()
        try:
            for i in range(40):
                created = fleet.client.post(
                    "/assignments", body={"title": f"mine-{i}"},
                    headers=session,
                )
                assert created.status == 201
                mid = created.json()["id"]
                got = fleet.client.get(f"/assignments/{mid}", headers=session)
                assert got.status == 200, (
                    f"write {i} (id {mid}) invisible to its own session"
                )
                assert got.json()["id"] == mid
                assert got.json()["title"] == f"mine-{i}"
                backends.add(got.headers[BACKEND_HEADER])
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not failures
        # The guarantee must have come from the floor check, not from
        # the replica accidentally keeping up — the primary served at
        # least one read (and under heavy lag, most of them).
        assert "primary" in backends

    def test_session_floor_table_is_bounded(self, fleet):
        from repro.web import front as front_mod

        for i in range(front_mod.MAX_SESSIONS + 50):
            response = json_response(None)
            response.headers[VERSION_HEADER] = str(i)
            fleet.front._raise_floor(f"s-{i}", response)
        assert len(fleet.front._sessions) == front_mod.MAX_SESSIONS


class TestPrimaryDown:
    def test_writes_503_with_retry_after_while_reads_serve(self, fleet):
        fleet.pump()
        fleet.front.primary = DownBackend("primary")
        refused = fleet.client.post("/assignments", body={"title": "X"})
        assert refused.status == 503
        assert refused.headers["retry-after"] == "1"
        assert "primary unavailable" in refused.json()["error"]["message"]
        # Reads keep flowing from the replica.
        listed = fleet.client.get("/assignments")
        assert listed.status == 200
        assert listed.headers[BACKEND_HEADER] == "replica-0"
        assert fleet.front.status()["primary_errors"] >= 1

    def test_everything_down_is_a_read_503(self, fleet):
        fleet.front.primary = DownBackend("primary")
        fleet.front._slots[0].backend = DownBackend("replica-0")
        response = fleet.client.get("/assignments")
        assert response.status == 503
        assert response.headers["retry-after"] == "1"


class _StubReplicaApp:
    """Answers the health probe with a scriptable replication status."""

    def __init__(self):
        self.replication = {"role": "replica", "connected": True,
                           "lag_frames": 0}
        self.requests = 0

    def __call__(self, request):
        self.requests += 1
        if request.path == "/api/v1/replication":
            return json_response(dict(self.replication))
        return json_response({"ok": True})


class TestReplicaHealth:
    def _front(self, **kwargs):
        stub = _StubReplicaApp()
        flaky = FlakyBackend("replica-0", stub)
        primary = LocalBackend("primary", _StubReplicaApp())
        front = FrontTier(primary, [flaky], probe_cooldown=0.05, **kwargs)
        return front, flaky, stub, Client(front, root="/api/v1")

    def test_failed_replica_is_evicted_then_readmitted(self, fleet_=None):
        front, flaky, _stub, client = self._front()
        assert client.get("/x").headers[BACKEND_HEADER] == "replica-0"
        flaky.down = True
        # Transport failure: evicted mid-read, primary answers instead.
        assert client.get("/x").headers[BACKEND_HEADER] == "primary"
        status = front.status()
        assert status["healthy_replicas"] == 0
        assert status["replicas"][0]["evictions"] == 1
        # Heal the node; after the cooldown the next read probes its
        # replication status and puts it straight back in rotation.
        flaky.down = False
        time.sleep(0.06)
        assert client.get("/x").headers[BACKEND_HEADER] == "replica-0"
        assert front.status()["replicas"][0]["readmissions"] == 1

    def test_lagging_replica_is_not_readmitted_until_caught_up(self):
        front, flaky, stub, client = self._front(max_lag_frames=8)
        flaky.down = True
        client.get("/x")  # evicts
        flaky.down = True
        flaky.down = False
        stub.replication["lag_frames"] = 500
        time.sleep(0.06)
        assert client.get("/x").headers[BACKEND_HEADER] == "primary"
        assert front.status()["healthy_replicas"] == 0
        stub.replication["lag_frames"] = 3
        time.sleep(0.06)
        assert client.get("/x").headers[BACKEND_HEADER] == "replica-0"

    def test_disconnected_replica_is_not_readmitted(self):
        front, flaky, stub, client = self._front()
        flaky.down = True
        client.get("/x")
        flaky.down = False
        stub.replication["connected"] = False
        time.sleep(0.06)
        assert client.get("/x").headers[BACKEND_HEADER] == "primary"
        stub.replication["connected"] = True
        time.sleep(0.06)
        assert client.get("/x").headers[BACKEND_HEADER] == "replica-0"


class TestFleetStatus:
    def test_fleet_endpoint_answers_from_the_front_tier(self, fleet):
        fleet.client.post("/assignments", body={"title": "X"},
                          headers={SESSION_HEADER: "s"})
        fleet.client.get("/assignments")
        status = fleet.client.get("/fleet").json()
        assert status["role"] == "router"
        assert status["primary"] == "primary"
        assert [r["name"] for r in status["replicas"]] == ["replica-0"]
        assert status["writes"] == 1
        assert status["reads"] == 1
        assert status["sessions"] == 1
