"""Fleet-wide tracing through the front tier — in-process.

The propagation chain under test: the router opens a ``front`` root
span, stamps ``traceparent`` on every proxied hop, the member's tracing
middleware continues that trace with a ``remote_parent`` link, and
``GET /api/v2/traces/<id>`` on the router stitches every member's
segments (including job segments) into one labelled tree.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.repository import Repository
from repro.corpus.seed import seed_ontologies
from repro.jobs import run_pending
from repro.obs import (
    MODE_ALL,
    MODE_OFF,
    REMOTE_PARENT_ATTR,
    TraceStore,
    Tracer,
)
from repro.web import CarCsApi, Client, FrontTier, LocalBackend
from repro.web.front import BACKEND_HEADER, SERVED_BY_HEADER


def make_tracer(**kwargs):
    kwargs.setdefault("mode", MODE_ALL)
    kwargs.setdefault("sample_every", 1)
    kwargs.setdefault("slow_ms", 1e9)
    return Tracer(TraceStore(capacity=64), **kwargs)


class RecordingBackend(LocalBackend):
    """A LocalBackend that keeps the headers of every proxied request."""

    def __init__(self, name, app):
        super().__init__(name, app)
        self.seen_headers = []

    def request(self, request):
        self.seen_headers.append(dict(request.headers))
        return super().request(request)


@pytest.fixture()
def traced_fleet():
    """A primary behind a FrontTier, every tier with its own tracer."""
    repo = Repository()
    seed_ontologies(repo)
    primary_tracer = make_tracer()
    primary_api = CarCsApi(repo, tracer=primary_tracer)
    backend = RecordingBackend("primary", primary_api)
    router_tracer = make_tracer()
    front = FrontTier(backend, [], tracer=router_tracer, name="router")
    return SimpleNamespace(
        repo=repo,
        front=front,
        backend=backend,
        primary_api=primary_api,
        primary_tracer=primary_tracer,
        router_tracer=router_tracer,
        client=Client(front, root="/api/v1"),
        v2=Client(front, root="/api/v2"),
    )


class TestContextPropagation:
    def test_proxied_hop_carries_the_routers_traceparent(self, traced_fleet):
        response = traced_fleet.client.get("/stats")
        assert response.ok
        headers = traced_fleet.backend.seen_headers[-1]
        assert "traceparent" in headers
        trace_id = response.headers["x-trace-id"]
        assert headers["traceparent"].split("-")[1] == trace_id

    def test_router_and_member_share_one_trace_id(self, traced_fleet):
        response = traced_fleet.client.get("/stats")
        trace_id = response.headers["x-trace-id"]
        router_record = traced_fleet.router_tracer.store.get(trace_id)
        member_record = traced_fleet.primary_tracer.store.get(trace_id)
        assert router_record is not None
        assert member_record is not None
        assert router_record.root.name == "front GET"
        assert member_record.root.name == "GET /api/v1/stats"
        # The member root names the router's hop span as its remote
        # parent — the edge the stitcher walks.
        hop = next(
            s for s in router_record.root.walk() if s.name == "front.read"
        )
        assert member_record.root.attributes[REMOTE_PARENT_ATTR] \
            == hop.span_id

    def test_inbound_traceparent_is_continued_not_replaced(
        self, traced_fleet
    ):
        inbound = "00-feedfacefeedfacefeedface-cafe0001-01"
        response = traced_fleet.client.get(
            "/stats", headers={"traceparent": inbound},
        )
        assert response.headers["x-trace-id"] == "feedfacefeedfacefeedface"
        record = traced_fleet.router_tracer.store.get(
            "feedfacefeedfacefeedface"
        )
        assert record.root.attributes[REMOTE_PARENT_ATTR] == "cafe0001"

    def test_tracer_off_router_proxies_without_headers(self):
        repo = Repository()
        seed_ontologies(repo)
        backend = RecordingBackend(
            "primary", CarCsApi(repo, tracer=make_tracer(mode=MODE_OFF))
        )
        front = FrontTier(
            backend, [], tracer=make_tracer(mode=MODE_OFF), name="router",
        )
        response = Client(front, root="/api/v1").get("/stats")
        assert response.ok
        assert "x-trace-id" not in response.headers
        assert "traceparent" not in backend.seen_headers[-1]

    def test_router_root_span_marks_5xx(self, traced_fleet):
        @traced_fleet.primary_api.router.route("GET", "/api/v1/boom")
        def boom(request):
            raise RuntimeError("kaboom")

        response = traced_fleet.client.get("/boom")
        assert response.status == 500
        record = traced_fleet.router_tracer.store.get(
            response.headers["x-trace-id"]
        )
        assert record.root.status == "error"


class TestServedBy:
    def test_proxied_responses_name_the_member(self, traced_fleet):
        response = traced_fleet.client.get("/stats")
        assert response.headers[SERVED_BY_HEADER] == "primary"
        assert response.headers[BACKEND_HEADER] == "primary"

    def test_router_local_endpoints_are_stamped_too(self, traced_fleet):
        assert traced_fleet.client.get("/fleet").headers[
            SERVED_BY_HEADER
        ] == "router"


class TestStitchedTraceEndpoint:
    def test_stitched_tree_spans_router_and_member(self, traced_fleet):
        trace_id = traced_fleet.client.get("/stats").headers["x-trace-id"]
        stitched = traced_fleet.v2.get(f"/traces/{trace_id}")
        assert stitched.ok
        payload = stitched.json()
        assert payload["trace_id"] == trace_id
        assert payload["processes"] == ["primary", "router"]
        assert payload["root"]["name"] == "front GET"
        assert payload["root"]["process"] == "router"
        # The router lists every backend it asked plus itself (it holds
        # the front segment for this trace).
        member_names = {m["name"] for m in payload["members"]}
        assert member_names == {"primary", "router"}
        assert all(m["reachable"] for m in payload["members"])
        # The member's segment hangs under the router's read hop.
        hop = next(
            c for c in payload["root"]["children"]
            if c["name"] == "front.read"
        )
        assert hop["children"][0]["name"] == "GET /api/v1/stats"
        assert hop["children"][0]["process"] == "primary"

    def test_job_segment_joins_the_stitched_tree(self, traced_fleet):
        # Seed one unclassified material so the classify sweep has work.
        from repro.core.material import Material

        traced_fleet.repo.add_material(
            Material(title="untagged", description="")
        )
        accepted = traced_fleet.v2.post("/jobs/classify", body={})
        assert accepted.status == 202
        trace_id = accepted.headers["x-trace-id"]
        run_pending(
            traced_fleet.primary_api.queue,
            traced_fleet.primary_api.job_handlers,
            tracer=traced_fleet.primary_tracer,
        )
        payload = traced_fleet.v2.get(f"/traces/{trace_id}").json()
        assert payload["unlinked"] == []
        names = set()
        stack = [payload["root"]]
        while stack:
            node = stack.pop()
            names.add(node["name"])
            stack.extend(node.get("children") or ())
        assert "front POST" in names
        assert "job.run" in names

    def test_unknown_trace_404s_with_member_detail(self, traced_fleet):
        response = traced_fleet.v2.get("/traces/deadbeefdeadbeefdeadbeef")
        assert response.status == 404

    def test_router_only_trace_still_renders(self, traced_fleet):
        # A trace retained by the router but sampled out by the member
        # still answers with the router's segment.
        trace_id = traced_fleet.client.get("/stats").headers["x-trace-id"]
        # Drain the tracer's completion queue into the store first, or
        # the clear races the deferred insert and the segment survives.
        traced_fleet.primary_tracer.store.segments(trace_id)
        traced_fleet.primary_tracer.store._traces.clear()
        payload = traced_fleet.v2.get(f"/traces/{trace_id}").json()
        assert payload["processes"] == ["router"]
        assert payload["root"]["name"] == "front GET"


class TestSloEndpoint:
    def test_slo_payload_shape(self, traced_fleet):
        for _ in range(3):
            traced_fleet.client.get("/stats")
        payload = traced_fleet.v2.get("/slo").json()
        assert set(payload["windows"]) == {"5m", "1h"}
        window = payload["windows"]["5m"]
        for key in ("availability", "availability_burn", "latency_burn",
                    "p99_ms", "req_s"):
            assert key in window
        assert payload["targets"]["availability"] > 0.9
        assert "queued" in payload["jobs"]
        assert payload["replication"]["role"] == "standalone"
        assert payload["uptime_seconds"] >= 0

    def test_slo_gauges_ride_the_metrics_exposition(self, traced_fleet):
        traced_fleet.client.get("/stats")
        text = Client(
            traced_fleet.primary_api, root="/api/v1"
        ).get("/metrics?format=prometheus").payload
        assert "carcs_slo_burn_rate" in text
        assert "carcs_build_info" in text
        assert "carcs_process_uptime_seconds" in text
        assert "carcs_process_threads" in text

    def test_slo_never_304s(self, traced_fleet):
        response = traced_fleet.v2.get(
            "/slo", headers={"if-none-match": "*"},
        )
        assert response.status == 200
