"""Every backpressure answer carries ``Retry-After`` + the envelope.

The system sheds load from several independent places — the front
tier's primary-outage 503s, the job queue's saturation 429, and the
admission middleware's deadline / rate-limit / concurrency refusals.
All of them flow through :func:`repro.web.middleware.
backpressure_response`, and this audit pins the contract: uniform
error envelope, a positive integer ``Retry-After``, and a
``carcs_shed_total`` counter increment — so a client can implement
*one* back-off loop for the whole fleet.
"""

from __future__ import annotations

import pytest

from repro.core.repository import Repository
from repro.corpus.seed import seed_ontologies
from repro.web import CarCsApi, Client, FrontTier, LocalBackend, Request
from repro.web.http import json_response
from repro.web.middleware import DEADLINE_HEADER


def _api(**kwargs) -> CarCsApi:
    repo = Repository()
    seed_ontologies(repo)
    return CarCsApi(repo, **kwargs)


def _broken_backend() -> LocalBackend:
    def explode(request):
        raise RuntimeError("kaboom")
    return LocalBackend("primary", explode)


def _front_primary_down_write():
    return FrontTier(_broken_backend())(
        Request.build("POST", "/api/v2/materials", body={"title": "x"})
    )


def _front_no_backend_read():
    return FrontTier(_broken_backend())(
        Request.build("GET", "/api/v2/materials")
    )


def _front_expired_deadline():
    healthy = LocalBackend("primary", lambda r: json_response({"ok": True}))
    return FrontTier(healthy)(
        Request.build("GET", "/api/v1/stats", headers={DEADLINE_HEADER: "0"})
    )


def _jobs_queue_full():
    client = Client(_api(max_queued_jobs=1), root="/api/v2")
    assert client.post("/jobs/classify", body={}).status == 202
    return client.post("/jobs/classify", body={})


def _admission_expired_deadline():
    return Client(_api(), root="/api/v1").get(
        "/stats", headers={DEADLINE_HEADER: "-5"}
    )


def _admission_rate_limited():
    client = Client(_api(rate_limit=1.0, rate_burst=1.0), root="/api/v1")
    assert client.get("/stats").ok
    return client.get("/stats")


def _admission_inflight_capped():
    api = _api(max_inflight=1)
    api.admission._inflight = 1  # a request is mid-dispatch
    try:
        return Client(api, root="/api/v1").get("/stats")
    finally:
        api.admission._inflight = 0


SHED_PATHS = {
    "front-primary-down-503": (_front_primary_down_write, 503),
    "front-no-backend-503": (_front_no_backend_read, 503),
    "front-deadline-503": (_front_expired_deadline, 503),
    "jobs-queue-full-429": (_jobs_queue_full, 429),
    "admission-deadline-503": (_admission_expired_deadline, 503),
    "admission-rate-limit-429": (_admission_rate_limited, 429),
    "admission-inflight-503": (_admission_inflight_capped, 503),
}


@pytest.mark.parametrize("name", sorted(SHED_PATHS))
def test_shed_path_carries_retry_after_and_envelope(name):
    provoke, expected_status = SHED_PATHS[name]
    response = provoke()
    assert response.status == expected_status
    retry_after = response.headers.get("retry-after")
    assert retry_after is not None, f"{name} lost its Retry-After header"
    assert int(retry_after) >= 1
    envelope = response.error
    assert envelope is not None, f"{name} lost the error envelope"
    assert envelope["code"] == expected_status
    assert envelope["message"]
    assert "request_id" in envelope


def test_every_shed_increments_the_shared_counter():
    api = _api(rate_limit=1.0, rate_burst=1.0)
    client = Client(api, root="/api/v1")
    client.get("/stats")
    client.get("/stats")  # shed
    counters = api.metrics.export()["counters"]
    shed = {k: v for k, v in counters.items()
            if k.startswith("carcs_shed_total")}
    assert sum(entry["value"] for entry in shed.values()) == 1
