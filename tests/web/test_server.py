"""The real-HTTP adapter over the in-process application."""

import json
import urllib.error
import urllib.request

import pytest

from repro.web import CarCsApi
from repro.web.server import ApiServer


@pytest.fixture(scope="module")
def server(seeded_repo):
    with ApiServer(CarCsApi(seeded_repo), port=0) as srv:
        yield srv


def get_json(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.loads(response.read())


class TestHttpServer:
    def test_stats_over_tcp(self, server):
        status, body = get_json(f"{server.url}/stats")
        assert status == 200
        assert body["materials"] >= 97

    def test_coverage_over_tcp(self, server):
        status, body = get_json(
            f"{server.url}/coverage?collection=peachy&ontology=PDC12"
        )
        assert status == 200
        assert body["n_materials"] == 11

    def test_404_status_propagates(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            get_json(f"{server.url}/nonexistent")
        assert exc.value.code == 404

    def test_post_with_body(self, server):
        data = json.dumps({
            "text": "parallel sorting with OpenMP tasks",
        }).encode()
        request = urllib.request.Request(
            f"{server.url}/recommend", data=data, method="POST",
            headers={"content-type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            body = json.loads(response.read())
        assert "suggestions" in body

    def test_port_assigned(self, server):
        assert server.port > 0
        assert str(server.port) in server.url
