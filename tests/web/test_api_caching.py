"""HTTP conditional GET: ETag / If-None-Match round trips.

The API derives a single ETag from the repository's mutation version, so
a client that revalidates with ``If-None-Match`` gets a cheap 304 until
any mutation lands — then a 200 with a fresh validator.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.repository import Repository
from repro.corpus import keys as K
from repro.corpus.seed import seed_all, seed_ontologies
from repro.web import ApiServer, CarCsApi, Client


@pytest.fixture()
def client():
    return Client(CarCsApi(seed_all()))


def make_material(client, title="Cache probe"):
    response = client.post("/assignments", body={
        "title": title,
        "description": "etag test material",
        "collection": "etag-demo",
        "classifications": [{"ontology": "PDC12", "key": K.A_SCAN}],
    })
    assert response.status == 201
    return response.json()["id"]


class TestEtagRoundTrip:
    def test_get_carries_etag(self, client):
        response = client.get("/coverage?collection=itcs3145&ontology=PDC12")
        assert response.ok
        etag = response.headers.get("etag")
        assert etag and etag.startswith('"carcs-v')

    def test_revalidation_returns_304_with_empty_body(self, client):
        first = client.get("/coverage?collection=itcs3145&ontology=PDC12")
        etag = first.headers["etag"]
        second = client.get(
            "/coverage?collection=itcs3145&ontology=PDC12", headers={"if-none-match": etag}
        )
        assert second.status == 304
        assert second.payload is None
        assert second.headers["etag"] == etag

    def test_mutation_invalidates_etag(self, client):
        first = client.get("/coverage?collection=itcs3145&ontology=PDC12")
        stale = first.headers["etag"]

        mid = make_material(client)

        # The stale validator no longer matches: full 200 + new ETag.
        after = client.get("/coverage?collection=itcs3145&ontology=PDC12", headers={"if-none-match": stale})
        assert after.status == 200
        fresh = after.headers["etag"]
        assert fresh != stale
        # The new validator revalidates until the next mutation.
        assert client.get(
            "/coverage?collection=itcs3145&ontology=PDC12", headers={"if-none-match": fresh}
        ).status == 304

        client.delete(f"/assignments/{mid}")
        assert client.get(
            "/coverage?collection=itcs3145&ontology=PDC12", headers={"if-none-match": fresh}
        ).status == 200

    def test_etag_shared_across_get_resources(self, client):
        """One repository version ⇒ one validator for every GET."""
        cov = client.get("/coverage?collection=itcs3145&ontology=PDC12").headers["etag"]
        stats = client.get("/stats").headers["etag"]
        assert cov == stats
        assert client.get(
            "/assignments", headers={"if-none-match": cov}
        ).status == 304

    def test_wildcard_and_weak_validators(self, client):
        assert client.get(
            "/coverage?collection=itcs3145&ontology=PDC12", headers={"if-none-match": "*"}
        ).status == 304
        etag = client.get("/stats").headers["etag"]
        assert client.get(
            "/stats", headers={"if-none-match": f"W/{etag}"}
        ).status == 304
        assert client.get(
            "/stats", headers={"if-none-match": f'"other", {etag}'}
        ).status == 304

    def test_non_matching_validator_gets_200(self, client):
        response = client.get(
            "/coverage?collection=itcs3145&ontology=PDC12", headers={"if-none-match": '"carcs-v0"'}
        )
        assert response.status == 200
        assert response.payload is not None

    def test_header_lookup_is_case_insensitive(self, client):
        etag = client.get("/stats").headers["etag"]
        assert client.get(
            "/stats", headers={"If-None-Match": etag}
        ).status == 304

    def test_post_and_errors_bypass_conditional_logic(self, client):
        # Non-GET requests are never short-circuited to 304.
        etag = client.get("/stats").headers["etag"]
        response = client.post(
            "/recommend", body={"text": "mpi"},
            headers={"if-none-match": etag},
        )
        assert response.status == 200
        # Error responses carry no ETag (the payload is not cacheable).
        missing = client.get("/assignments/999999")
        assert missing.status == 404
        assert "etag" not in missing.headers


class TestEtagOverRealHttp:
    @pytest.fixture(scope="class")
    def server(self):
        repo = Repository()
        seed_ontologies(repo)
        with ApiServer(CarCsApi(repo), port=0) as srv:
            yield srv

    def test_304_over_the_wire(self, server):
        with urllib.request.urlopen(f"{server.url}/stats") as resp:
            assert resp.status == 200
            etag = resp.headers["etag"]
            assert json.loads(resp.read())

        request = urllib.request.Request(
            f"{server.url}/stats", headers={"If-None-Match": etag}
        )
        # urllib raises on any non-2xx status, including 304.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 304
        assert excinfo.value.headers["etag"] == etag
        assert excinfo.value.read() == b""
