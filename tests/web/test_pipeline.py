"""The instrumented request pipeline: middleware, envelopes, v1 surface."""

import pytest

from repro.core.repository import Repository
from repro.corpus.seed import seed_ontologies
from repro.obs import MetricsRegistry, RequestLog
from repro.web import CarCsApi, Client
from repro.web.http import HttpError, Request, json_response
from repro.web.middleware import (
    ErrorMiddleware,
    MetricsMiddleware,
    RequestIdMiddleware,
    compose,
)


@pytest.fixture()
def api():
    repo = Repository()
    seed_ontologies(repo)
    return CarCsApi(repo)


@pytest.fixture()
def client(api):
    return Client(api, root="/api/v1")


class TestCompose:
    def test_middlewares_wrap_outermost_first(self):
        trace = []

        def make(tag):
            def middleware(request, call_next):
                trace.append(f"{tag}-in")
                response = call_next(request)
                trace.append(f"{tag}-out")
                return response
            return middleware

        handler = compose(
            [make("a"), make("b"), make("c")],
            lambda request: trace.append("endpoint") or json_response(None),
        )
        handler(Request.build("GET", "/x"))
        assert trace == [
            "a-in", "b-in", "c-in", "endpoint", "c-out", "b-out", "a-out",
        ]

    def test_api_chain_order(self, api):
        # The production chain must keep the id stamp outermost, the
        # snapshot pin outside the conditional-GET check, and the
        # version stamp between them (pinned version on reads, stamped
        # on 304s too).
        names = [type(m).__name__ for m in api.middlewares]
        assert names == [
            "RequestIdMiddleware",
            "TracingMiddleware",
            "MetricsMiddleware",
            "LoggingMiddleware",
            "ErrorMiddleware",
            "AdmissionMiddleware",
            "SnapshotMiddleware",
            "VersionHeaderMiddleware",
            "ConditionalGetMiddleware",
        ]

    def test_read_only_chain_gains_the_refusal_above_the_pin(self):
        from repro.core.repository import Repository
        from repro.web import CarCsApi

        api = CarCsApi(Repository(), read_only=True)
        names = [type(m).__name__ for m in api.middlewares]
        assert names.index("ReadOnlyMiddleware") < names.index(
            "SnapshotMiddleware"
        )


class TestRequestIds:
    def test_every_response_carries_an_id(self, client):
        first = client.get("/healthz")
        second = client.get("/healthz")
        assert first.headers["x-request-id"]
        assert first.headers["x-request-id"] != second.headers["x-request-id"]

    def test_inbound_id_is_propagated(self, client):
        r = client.get("/healthz", headers={"x-request-id": "proxy-41"})
        assert r.headers["x-request-id"] == "proxy-41"

    def test_error_envelope_carries_the_request_id(self, client):
        r = client.get("/assignments/999999", headers={"x-request-id": "rid-7"})
        assert r.status == 404
        assert r.error == {
            "code": 404,
            "message": "no material with id 999999",
            "request_id": "rid-7",
        }

    def test_request_is_logged_with_its_id(self, api, client):
        r = client.get("/healthz", headers={"x-request-id": "logged-1"})
        assert r.ok
        (record,) = api.request_log.find("logged-1")
        assert record["status"] == 200
        assert record["route"] == "/api/v1/healthz"
        assert record["duration_ms"] >= 0


class TestErrorBoundary:
    def test_uncaught_exception_becomes_clean_500(self):
        registry = MetricsRegistry()
        log = RequestLog()

        def explode(request):
            raise RuntimeError("wires crossed")

        handler = compose(
            [RequestIdMiddleware(), MetricsMiddleware(registry),
             ErrorMiddleware(registry, log)],
            explode,
        )
        response = handler(Request.build("GET", "/x"))
        assert response.status == 500
        assert response.error["message"] == "internal server error"
        assert response.error["request_id"]
        # The internal detail is logged, not leaked to the client.
        assert "wires crossed" not in str(response.payload)
        assert log.tail(1)[0]["detail"] == "wires crossed"
        assert registry.counter(
            "http_exceptions_total", type="RuntimeError"
        ).value == 1

    def test_http_error_from_middleware_keeps_its_status(self):
        def reject(request):
            raise HttpError(403, "nope")

        handler = compose([ErrorMiddleware()], reject)
        assert handler(Request.build("GET", "/x")).status == 403

    def test_handler_exception_does_not_kill_subsequent_requests(self, api):
        # Register a broken v1 route directly, then hit it over the full
        # pipeline: the 500 must not poison the app for the next request.
        api.router.add(
            "GET", "/api/v1/broken",
            lambda request: (_ for _ in ()).throw(ValueError("boom")),
        )
        client = Client(api, root="/api/v1")
        assert client.get("/broken").status == 500
        assert client.get("/healthz").status == 200


class TestMetricsCollection:
    def test_per_route_counters_and_histograms(self, api, client):
        for _ in range(3):
            assert client.get("/ontologies").ok
        label = "GET /api/v1/ontologies"
        counter = api.metrics.counter(
            "http_requests_total", route=label, status="2xx"
        )
        assert counter.value == 3
        hist = api.metrics.histogram("http_request_seconds", route=label)
        assert hist.count == 3
        assert hist.sum > 0

    def test_status_classes_are_separated(self, api, client):
        client.get("/assignments/424242")  # 404
        label = "GET /api/v1/assignments/<int:id>"
        assert api.metrics.counter(
            "http_requests_total", route=label, status="4xx"
        ).value == 1

    def test_unmatched_paths_share_one_label(self, api, client):
        client.get("/definitely/not/a/route")
        assert api.metrics.counter(
            "http_requests_total", route="GET <unmatched>", status="4xx"
        ).value == 1


class TestMetricsEndpoint:
    def test_exports_route_series_and_repo_counters(self, client):
        assert client.get("/stats").ok
        body = client.get("/metrics").json()
        counters = body["metrics"]["counters"]
        key = 'http_requests_total{route="GET /api/v1/stats",status="2xx"}'
        assert counters[key]["value"] == 1
        hists = body["metrics"]["histograms"]
        assert 'http_request_seconds{route="GET /api/v1/stats"}' in hists
        gauges = body["metrics"]["gauges"]
        # db/cache counters from Repository.stats() surface as gauges.
        assert "carcs_version" in gauges
        assert "carcs_cache_hits" in gauges
        assert gauges["carcs_materials"]["value"] == 0

    def test_metrics_never_304(self, client):
        first = client.get("/metrics")
        assert "etag" not in first.headers
        again = client.get("/metrics", headers={"if-none-match": "*"})
        assert again.status == 200

    def test_healthz(self, client):
        body = client.get("/healthz").json()
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0
        assert body["version"] >= 0


class TestVersionedSurface:
    def test_index_lists_the_route_table(self, client):
        body = client.get("/").json()
        assert body["api_version"] == "v1"
        paths = {(r["method"], r["path"]) for r in body["routes"]}
        assert ("GET", "/api/v1/coverage") in paths
        assert ("POST", "/api/v1/assignments") in paths
        assert ("GET", "/api/v1/metrics") in paths
        # The index only advertises canonical routes, never the aliases.
        assert all(p.startswith("/api/v1") for _, p in paths)

    def test_v1_and_alias_dispatch_identically(self, api):
        plain = Client(api)
        v1 = Client(api, root="/api/v1")
        assert v1.get("/ontologies").json() == plain.get("/ontologies").json()

    def test_alias_carries_deprecation_header(self, api):
        plain = Client(api)
        r = plain.get("/ontologies")
        assert r.ok
        assert r.headers["deprecation"] == "true"

    def test_v1_routes_are_not_deprecated(self, client):
        r = client.get("/ontologies")
        assert r.ok
        assert "deprecation" not in r.headers

    def test_alias_errors_keep_the_envelope_and_header(self, api):
        r = Client(api).get("/assignments/31337")
        assert r.status == 404
        assert r.headers["deprecation"] == "true"
        assert r.error["code"] == 404

    def test_typed_params_reach_handlers_as_ints(self, client):
        # A non-numeric id never matches the <int:id> route at all.
        assert client.get("/assignments/abc").status == 404
        r = client.get("/assignments/1")
        assert r.status == 404  # empty repo, but the route *did* match
        assert "no material with id 1" in r.error["message"]
