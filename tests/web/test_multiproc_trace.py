"""Fleet-wide trace of a classify job across real processes.

Boots an actual primary (``--workers 1``) and router as subprocesses,
submits a classify job through the router, and asserts one trace id
covers router → primary → worker: the stitched tree from
``GET /api/v2/traces/<id>`` carries both process labels plus the
``job.run`` segment, and ``carcs trace --id`` renders it.

Marked ``multiproc`` — skipped unless ``CARCS_MULTIPROC=1``.
"""

import subprocess
import sys
import time

import pytest

from tests.replication.test_multiprocess import (
    BOOT_TIMEOUT,
    REPO_ROOT,
    _drain,
    _free_port,
    _http,
    _spawn,
    _wait_http,
)

pytestmark = pytest.mark.multiproc


@pytest.fixture()
def traced_topology():
    """primary (with one job worker) + router ``carcs serve`` processes."""
    primary_port, router_port = _free_port(), _free_port()
    primary_url = f"http://127.0.0.1:{primary_port}"
    router_url = f"http://127.0.0.1:{router_port}"
    procs = {}
    deadline = time.time() + BOOT_TIMEOUT
    try:
        procs["primary"] = _spawn(
            "serve", "--host", "127.0.0.1", "--port", str(primary_port),
            "--workers", "1",
        )
        _wait_http(f"{primary_url}/api/v1/healthz", deadline)
        procs["router"] = _spawn(
            "serve", "--router", "--host", "127.0.0.1",
            "--port", str(router_port), "--primary-url", primary_url,
        )
        _wait_http(f"{router_url}/api/v1/fleet", deadline)
        yield {"primary": primary_url, "router": router_url}
    finally:
        for proc in procs.values():
            proc.terminate()
        for name, proc in procs.items():
            out = _drain(proc)
            sys.stdout.write(f"--- {name} ---\n{out}\n")


def _walk_names(node, names):
    names.add(node["name"])
    for child in node.get("children") or ():
        _walk_names(child, names)


def test_one_trace_id_covers_router_primary_and_worker(traced_topology):
    router = traced_topology["router"]

    status, headers, _ = _http(
        "POST", f"{router}/api/v2/jobs/classify", body={},
    )
    assert status == 202
    trace_id = headers["x-trace-id"]
    location = headers["location"]

    deadline = time.time() + BOOT_TIMEOUT
    job = None
    while time.time() < deadline:
        _, _, job = _http("GET", f"{router}{location}")
        if job["status"] in ("done", "dead"):
            break
        time.sleep(0.1)
    assert job is not None and job["status"] == "done", job
    # The v2 job payload names the originating trace.
    assert job["trace_id"] == trace_id

    status, _, stitched = _http("GET", f"{router}/api/v2/traces/{trace_id}")
    assert status == 200
    assert stitched["trace_id"] == trace_id
    assert set(stitched["processes"]) == {"primary", "router"}
    names = set()
    _walk_names(stitched["root"], names)
    for orphan in stitched["unlinked"]:
        _walk_names(orphan, names)
    assert "front POST" in names
    assert "job.run" in names
    # The worker's segment is linked under the request, not orphaned.
    assert stitched["unlinked"] == []

    rendered = subprocess.run(
        [sys.executable, "-m", "repro.cli", "trace",
         "--id", trace_id, "--url", router],
        cwd=REPO_ROOT, capture_output=True, text=True, timeout=30,
        env={"PYTHONPATH": f"{REPO_ROOT}/src", "PATH": "/usr/bin:/bin"},
    )
    assert rendered.returncode == 0, rendered.stderr
    assert "front POST" in rendered.stdout
    assert "job.run" in rendered.stdout
    assert "@primary" in rendered.stdout
    assert "@router" in rendered.stdout
