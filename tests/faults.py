"""Reusable fault-injection primitives for the storage/replication path.

The durability claims of the engine ("a torn tail never corrupts
committed history", "a failed checkpoint keeps the old snapshot valid")
are only as good as the crashes they were tested against.  This module
injects those crashes deterministically:

* :class:`FaultyFile` — a file-object proxy with a byte *write budget*:
  the write that would exceed it reaches disk only partially and then
  raises :class:`CrashError`, which is exactly what a power cut mid-
  ``write(2)`` leaves behind.  Wrap a live ``WalWriter``'s handle with
  :func:`crash_wal_writes` to kill a real workload mid-commit.
* :func:`failing_fsync` / :func:`failing_replace` — context managers
  that make ``os.fsync`` / ``os.replace`` raise ``OSError``, simulating
  a device error at the barrier / a crash before the atomic snapshot
  publish.
* :func:`tear` — truncate an on-disk file to a prefix, the post-mortem
  form of a torn write.

`CrashError` subclasses ``RuntimeError`` so production code that guards
specific failure modes (``OSError``, ``ValueError``) never swallows an
injected crash by accident.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from unittest import mock


class CrashError(RuntimeError):
    """The injected crash: the process 'died' at this exact write."""


class FaultyFile:
    """File-object proxy that tears the write exceeding its byte budget.

    ``write_budget=None`` passes everything through (useful as a no-op
    control).  Once the budget is exhausted the partial prefix of the
    offending write is flushed to disk — a torn record — and every
    subsequent write raises immediately.
    """

    def __init__(self, fh, *, write_budget: int | None = None) -> None:
        self._fh = fh
        self.write_budget = write_budget
        self.torn = False

    def write(self, data: bytes) -> int:
        if self.write_budget is None:
            return self._fh.write(data)
        if self.torn:
            raise CrashError("process already crashed")
        if len(data) <= self.write_budget:
            self.write_budget -= len(data)
            return self._fh.write(data)
        keep = self.write_budget
        self.write_budget = 0
        self.torn = True
        if keep:
            self._fh.write(data[:keep])
        self._fh.flush()
        raise CrashError(
            f"torn write: {keep}/{len(data)} bytes reached disk"
        )

    def __getattr__(self, name: str):
        return getattr(self._fh, name)


def crash_wal_writes(db, write_budget: int) -> FaultyFile:
    """Arm a durable database so its WAL tears after ``write_budget``
    more bytes.  Returns the proxy (inspect ``.torn`` afterwards)."""
    wal = db._wal
    assert wal is not None, "database has no WAL attached"
    proxy = FaultyFile(wal._fh, write_budget=write_budget)
    wal._fh = proxy
    return proxy


@contextmanager
def failing_fsync(exc: Exception | None = None):
    """Every ``os.fsync`` inside the scope raises (device error at the
    durability barrier)."""
    error = exc if exc is not None else OSError(5, "injected fsync failure")

    def boom(fd):
        raise error

    with mock.patch("os.fsync", boom):
        yield


@contextmanager
def failing_replace(exc: Exception | None = None):
    """Every ``os.replace`` inside the scope raises — the crash right
    before a checkpoint's atomic snapshot publish."""
    error = exc if exc is not None else OSError(5, "injected replace failure")

    def boom(src, dst):
        raise error

    with mock.patch("os.replace", boom):
        yield


def tear(path: str | Path, keep_bytes: int) -> None:
    """Truncate ``path`` to its first ``keep_bytes`` bytes in place."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[:keep_bytes])


class CrashBudget:
    """A callable fuse: pass through N times, then raise CrashError.

    Thread it into any injectable callback (a job heartbeat, a commit
    listener) to kill a workload at a *deterministic* point mid-run —
    e.g. "the worker died after writing its first batch".
    """

    def __init__(self, allowed: int) -> None:
        self.allowed = allowed
        self.calls = 0

    def __call__(self, *args, **kwargs) -> None:
        self.calls += 1
        if self.calls > self.allowed:
            raise CrashError(
                f"process crashed at call {self.calls} "
                f"(budget was {self.allowed})"
            )
