"""CSV and GraphML exports."""

import csv
import io
import xml.etree.ElementTree as ET

import networkx as nx
import pytest

from repro.core.coverage import compute_coverage
from repro.core.similarity import similarity_graph
from repro.corpus import collection_ids
from repro.viz.export import (
    coverage_to_csv,
    materials_to_csv,
    similarity_to_graphml,
    write_coverage_csv,
    write_similarity_graphml,
)


@pytest.fixture(scope="module")
def itcs_coverage(seeded_repo):
    return compute_coverage(seeded_repo, "PDC12", collection="itcs3145")


@pytest.fixture(scope="module")
def figure3(seeded_repo):
    return similarity_graph(
        seeded_repo,
        collection_ids(seeded_repo, "nifty"),
        collection_ids(seeded_repo, "peachy"),
        threshold=2, left_group="nifty", right_group="peachy",
    )


class TestCoverageCsv:
    def test_rows_parse_and_match_report(self, seeded_repo, itcs_coverage):
        text = coverage_to_csv(itcs_coverage, seeded_repo.ontology("PDC12"))
        rows = list(csv.DictReader(io.StringIO(text)))
        assert rows
        by_key = {r["key"]: r for r in rows}
        prog = by_key["PDC12/PROG"]
        assert int(prog["rollup"]) == 16
        assert prog["kind"] == "area"

    def test_uncovered_excluded_by_default(self, seeded_repo, itcs_coverage):
        text = coverage_to_csv(itcs_coverage, seeded_repo.ontology("PDC12"))
        rows = list(csv.DictReader(io.StringIO(text)))
        assert all(int(r["rollup"]) > 0 for r in rows)

    def test_include_uncovered_lists_everything(self, seeded_repo, itcs_coverage):
        onto = seeded_repo.ontology("PDC12")
        text = coverage_to_csv(itcs_coverage, onto, include_uncovered=True)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(onto)

    def test_write_to_file(self, seeded_repo, itcs_coverage, tmp_path):
        path = write_coverage_csv(
            itcs_coverage, seeded_repo.ontology("PDC12"),
            tmp_path / "coverage.csv",
        )
        assert path.read_text().startswith("key,path,kind,direct,rollup")


class TestGraphml:
    def test_round_trips_through_networkx(self, figure3):
        text = similarity_to_graphml(figure3)
        loaded = nx.read_graphml(io.BytesIO(text.encode()))
        assert loaded.number_of_nodes() == figure3.number_of_nodes()
        assert loaded.number_of_edges() == figure3.number_of_edges()

    def test_attributes_survive(self, figure3):
        text = similarity_to_graphml(figure3)
        loaded = nx.read_graphml(io.BytesIO(text.encode()))
        groups = {d["group"] for _, d in loaded.nodes(data=True)}
        assert groups == {"nifty", "peachy"}
        some_edge = next(iter(loaded.edges(data=True)))
        assert some_edge[2]["shared"] == 2
        assert "|" in some_edge[2]["shared_keys"]

    def test_is_valid_xml(self, figure3):
        ET.fromstring(similarity_to_graphml(figure3))

    def test_write_to_file(self, figure3, tmp_path):
        path = write_similarity_graphml(figure3, tmp_path / "fig3.graphml")
        assert path.exists()


class TestMaterialsCsv:
    def test_all_materials(self, seeded_repo):
        rows = list(csv.DictReader(io.StringIO(materials_to_csv(seeded_repo))))
        assert len(rows) == 97

    def test_collection_filter(self, seeded_repo):
        rows = list(csv.DictReader(io.StringIO(
            materials_to_csv(seeded_repo, "peachy")
        )))
        assert len(rows) == 11
        assert all(r["collection"] == "peachy" for r in rows)

    def test_classification_counts_positive(self, seeded_repo):
        rows = list(csv.DictReader(io.StringIO(materials_to_csv(seeded_repo))))
        assert all(int(r["n_classifications"]) > 0 for r in rows)
