"""The headless Figure 1b tree-list widget."""

import pytest

from repro.core.classification import ClassificationSet
from repro.corpus import keys as K
from repro.viz.tree_widget import TreeListWidget


@pytest.fixture()
def widget(pdc12):
    return TreeListWidget(pdc12)


class TestExpansion:
    def test_initially_only_areas_visible(self, widget, pdc12):
        rows = widget.visible_rows()
        assert len(rows) == len(pdc12.areas())
        assert all(r.depth == 0 for r in rows)

    def test_expanding_area_reveals_units(self, widget):
        widget.expand("PDC12/PROG")
        rows = widget.visible_rows()
        unit_rows = [r for r in rows if r.depth == 1]
        assert unit_rows
        assert all(r.key.startswith("PDC12/PROG/") for r in unit_rows)

    def test_collapse_hides_descendants(self, widget):
        widget.expand("PDC12/PROG")
        widget.collapse("PDC12/PROG")
        assert all(r.depth == 0 for r in widget.visible_rows())

    def test_toggle(self, widget):
        assert widget.toggle("PDC12/PROG") is True
        assert widget.is_expanded("PDC12/PROG")
        assert widget.toggle("PDC12/PROG") is False

    def test_root_cannot_collapse(self, widget):
        with pytest.raises(ValueError):
            widget.collapse("PDC12")

    def test_expand_unknown_key(self, widget):
        with pytest.raises(KeyError):
            widget.expand("PDC12/NOPE")

    def test_expand_to_reveals_deep_node(self, widget):
        widget.expand_to(K.P_OPENMP)
        keys = {r.key for r in widget.visible_rows()}
        assert K.P_OPENMP in keys

    def test_collapse_all(self, widget):
        widget.expand_to(K.P_OPENMP)
        widget.collapse_all()
        assert all(r.depth == 0 for r in widget.visible_rows())


class TestSelection:
    def test_select_and_deselect(self, widget):
        widget.select(K.P_OPENMP)
        assert widget.is_selected(K.P_OPENMP)
        widget.deselect(K.P_OPENMP)
        assert not widget.is_selected(K.P_OPENMP)

    def test_toggle_selection(self, widget):
        assert widget.toggle_selection(K.P_MPI) is True
        assert widget.toggle_selection(K.P_MPI) is False

    def test_root_not_selectable(self, widget):
        with pytest.raises(ValueError):
            widget.select("PDC12")

    def test_selection_round_trips_to_classification(self, widget):
        widget.select(K.P_OPENMP)
        widget.select(K.P_MPI)
        cs = widget.to_classification()
        assert cs.keys("PDC12") == frozenset({K.P_OPENMP, K.P_MPI})

    def test_load_classification_initializes_and_reveals(self, widget):
        cs = ClassificationSet()
        cs.add("PDC12", K.P_OPENMP)
        cs.add("CS13", K.SDF_ARRAYS)  # other ontology — ignored
        widget.load_classification(cs)
        assert widget.selection() == frozenset({K.P_OPENMP})
        assert K.P_OPENMP in {r.key for r in widget.visible_rows()}


class TestSearch:
    def test_search_highlights_and_reveals(self, widget):
        hits = widget.search("amdahl")
        assert hits == 1
        rows = {r.key: r for r in widget.visible_rows()}
        highlighted = [r for r in rows.values() if r.highlighted]
        assert len(highlighted) == 1
        assert "Amdahl" in highlighted[0].label

    def test_empty_search_clears(self, widget):
        widget.search("amdahl")
        assert widget.search("  ") == 0
        assert widget.highlighted() == frozenset()

    def test_search_does_not_change_selection(self, widget):
        widget.select(K.P_MPI)
        widget.search("openmp")
        assert widget.selection() == frozenset({K.P_MPI})


class TestRendering:
    def test_render_marks(self, widget):
        widget.expand("PDC12/PROG")
        widget.expand_to(K.P_OPENMP)
        widget.select(K.P_OPENMP)
        widget.search("openmp")
        text = widget.render_text()
        assert "v [ ]" in text           # expanded area
        assert "> [ ]" in text           # collapsed area
        assert "[x]*" in text            # selected + highlighted OpenMP row

    def test_render_respects_width(self, widget, pdc12):
        for node in pdc12.areas():
            widget.expand(node.key)
        for line in widget.render_text(width=60).splitlines():
            assert len(line) <= 70

    def test_curation_flow_end_to_end(self, widget):
        """The IV-A workflow: search, select from hits, read back."""
        widget.search("critical regions")
        (hit,) = widget.highlighted()
        widget.select(hit)
        cs = widget.to_classification()
        assert cs.has("PDC12", K.P_CRITICAL)
