"""The self-contained HTML report."""

import pytest

from repro.viz.html_report import render_report, write_report


@pytest.fixture(scope="module")
def report(seeded_repo):
    return render_report(seeded_repo)


class TestRenderReport:
    def test_is_complete_html_document(self, report):
        assert report.startswith("<!DOCTYPE html>")
        assert report.endswith("</html>")

    def test_contains_all_seven_figures(self, report):
        # 5 non-empty coverage panels (nifty/PDC12 is empty by design)
        # + 1 similarity graph = 6 SVGs, plus one "no coverage" note.
        assert report.count("<svg") == 6
        assert "no coverage" in report

    def test_coverage_tables_present(self, report):
        assert "Coverage against CS13" in report
        assert "Coverage against PDC12" in report
        assert "<table>" in report

    def test_similarity_summary_numbers(self, report):
        assert "24 edges" in report
        assert "59/65" in report
        assert "7/11" in report

    def test_titles_escaped(self, seeded_repo):
        html = render_report(seeded_repo, title="A & B <report>")
        assert "A &amp; B &lt;report&gt;" in html

    def test_restricted_collections(self, seeded_repo):
        html = render_report(
            seeded_repo, collections=["peachy"], ontologies=["PDC12"],
        )
        assert "peachy / PDC12" in html
        assert "nifty / PDC12" not in html

    def test_write_report(self, seeded_repo, tmp_path):
        path = write_report(seeded_repo, tmp_path / "report.html")
        assert path.exists()
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_missing_similarity_pair_is_tolerated(self, seeded_repo):
        html = render_report(
            seeded_repo, similarity_pair=("ghost", "peachy"),
        )
        assert "Similarity:" not in html
