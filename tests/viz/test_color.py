"""Color ramps for the figure renderers."""

import re

from repro.viz.color import (
    TRANSPARENT,
    group_color,
    intensity_char,
    intensity_color,
)

HEX = re.compile(r"^#[0-9a-f]{6}$")


class TestIntensityColor:
    def test_zero_count_is_transparent(self):
        # "Ontology entry absent from the materials are transparent"
        assert intensity_color(1, 0, 10) == TRANSPARENT

    def test_positive_counts_are_hex(self):
        assert HEX.match(intensity_color(1, 3, 10))

    def test_intensity_monotone_in_count(self):
        def brightness(color):
            return sum(int(color[i:i + 2], 16) for i in (1, 3, 5))

        low = intensity_color(1, 1, 10)
        high = intensity_color(1, 10, 10)
        assert brightness(high) < brightness(low)  # fuller color is darker

    def test_different_palettes_per_depth(self):
        # "The color palette is different for zeroth, first, and
        # more-than-first level nodes."
        colors = {intensity_color(d, 5, 5) for d in (0, 1, 2)}
        assert len(colors) == 3

    def test_depths_beyond_two_share_palette(self):
        assert intensity_color(2, 5, 5) == intensity_color(7, 5, 5)

    def test_count_clamped_to_max(self):
        assert intensity_color(1, 99, 10) == intensity_color(1, 10, 10)

    def test_max_count_zero_is_safe(self):
        assert HEX.match(intensity_color(1, 1, 0))


class TestIntensityChar:
    def test_zero_is_dot(self):
        assert intensity_char(0, 10) == "·"

    def test_full_is_block(self):
        assert intensity_char(10, 10) == "█"

    def test_monotone_ramp(self):
        ramp = "░▒▓█"
        chars = [intensity_char(c, 10) for c in range(1, 11)]
        indices = [ramp.index(ch) for ch in chars]
        assert indices == sorted(indices)


class TestGroupColor:
    def test_nifty_blue_peachy_red(self):
        # "Blue circles represent Nifty assignments while red circles
        # represent Peachy assignments."
        assert group_color("nifty") == "#1f77b4"
        assert group_color("peachy") == "#d62728"

    def test_unknown_group_gray(self):
        assert group_color("other") == "#7f7f7f"
