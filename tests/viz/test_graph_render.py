"""Force-directed layout and similarity-graph SVG (Figure 3 panel)."""

import xml.etree.ElementTree as ET

import networkx as nx
import numpy as np
import pytest

from repro.core.similarity import similarity_graph
from repro.corpus import collection_ids
from repro.viz.graph_render import fruchterman_reingold, render_svg, render_text


@pytest.fixture(scope="module")
def figure3_graph(seeded_repo):
    return similarity_graph(
        seeded_repo,
        collection_ids(seeded_repo, "nifty"),
        collection_ids(seeded_repo, "peachy"),
        threshold=2,
        left_group="nifty",
        right_group="peachy",
    )


class TestLayout:
    def test_positions_for_every_node(self, figure3_graph):
        pos = fruchterman_reingold(figure3_graph)
        assert set(pos) == set(figure3_graph.nodes())

    def test_positions_inside_unit_box(self, figure3_graph):
        pos = fruchterman_reingold(figure3_graph, size=1.0)
        coords = np.array(list(pos.values()))
        assert coords.min() >= 0.0 and coords.max() <= 1.0

    def test_deterministic_per_seed(self, figure3_graph):
        a = fruchterman_reingold(figure3_graph, seed=3, iterations=20)
        b = fruchterman_reingold(figure3_graph, seed=3, iterations=20)
        assert a == b

    def test_connected_nodes_closer_than_average(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2), (0, 2)])   # a triangle...
        g.add_nodes_from(range(3, 23))               # ...plus 20 isolated
        pos = fruchterman_reingold(g, iterations=200)

        def dist(u, v):
            return np.hypot(
                pos[u][0] - pos[v][0], pos[u][1] - pos[v][1]
            )

        edge_mean = np.mean([dist(u, v) for u, v in g.edges()])
        nodes = list(g.nodes())
        all_mean = np.mean([
            dist(u, v) for i, u in enumerate(nodes) for v in nodes[i + 1:]
        ])
        assert edge_mean < all_mean

    def test_empty_graph(self):
        assert fruchterman_reingold(nx.Graph()) == {}

    def test_single_node(self):
        g = nx.Graph()
        g.add_node("only")
        pos = fruchterman_reingold(g)
        assert "only" in pos


class TestSvg:
    def test_valid_xml(self, figure3_graph):
        svg = render_svg(figure3_graph, title="Figure 3")
        ET.fromstring(svg)

    def test_node_and_edge_counts(self, figure3_graph):
        svg = render_svg(figure3_graph)
        assert svg.count("<circle") == figure3_graph.number_of_nodes()
        assert svg.count("<line") == figure3_graph.number_of_edges()

    def test_group_colors_used(self, figure3_graph):
        svg = render_svg(figure3_graph)
        assert 'fill="#1f77b4"' in svg  # blue Nifty
        assert 'fill="#d62728"' in svg  # red Peachy

    def test_titles_become_tooltips(self, figure3_graph):
        svg = render_svg(figure3_graph)
        assert "<title>Hurricane Tracker</title>" in svg


class TestText:
    def test_groups_and_edges_listed(self, figure3_graph):
        text = render_text(figure3_graph)
        assert "nifty (65 nodes" in text
        assert "peachy (11 nodes" in text
        assert "edges (24):" in text

    def test_connected_nodes_starred(self, figure3_graph):
        text = render_text(figure3_graph)
        assert "Hurricane Tracker *" in text
        assert "Evil Hangman\n" in text + "\n"  # isolated: no star
