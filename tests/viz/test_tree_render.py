"""Coverage-tree renderers (Figure 2 panels)."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.coverage import compute_coverage
from repro.viz.tree_render import iter_nodes, render_svg, render_text


@pytest.fixture(scope="module")
def itcs_tree(seeded_repo):
    cov = compute_coverage(seeded_repo, "PDC12", collection="itcs3145")
    return cov.tree(seeded_repo.ontology("PDC12"))


class TestRenderText:
    def test_root_line_reports_materials(self, itcs_tree):
        text = render_text(itcs_tree)
        assert text.splitlines()[0] == "PDC12  (21 materials)"

    def test_area_codes_tagged(self, itcs_tree):
        text = render_text(itcs_tree)
        for code in ("PROG", "ALGO", "ARCH", "CROSS"):
            assert f"[{code}]" in text

    def test_counts_shown(self, itcs_tree):
        assert "(16)" in render_text(itcs_tree)  # Programming area

    def test_max_depth_limits_output(self, itcs_tree):
        shallow = render_text(itcs_tree, max_depth=1)
        deep = render_text(itcs_tree, max_depth=3)
        assert len(deep.splitlines()) > len(shallow.splitlines())

    def test_pruned_tree_has_no_zero_lines(self, itcs_tree):
        text = render_text(itcs_tree)
        assert "(0)" not in text

    def test_long_labels_truncated(self, itcs_tree):
        for line in render_text(itcs_tree, width=60).splitlines():
            assert len(line) <= 80


class TestRenderSvg:
    def test_valid_xml(self, itcs_tree):
        svg = render_svg(itcs_tree, title="ITCS 3145 / PDC12")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_circle_count_matches_tree_nodes(self, itcs_tree):
        svg = render_svg(itcs_tree)
        n_nodes = sum(1 for _ in iter_nodes(itcs_tree))
        assert svg.count("<circle") == n_nodes

    def test_edges_connect_parents_and_children(self, itcs_tree):
        svg = render_svg(itcs_tree)
        assert svg.count("<line") == sum(1 for _ in iter_nodes(itcs_tree)) - 1

    def test_area_codes_labelled(self, itcs_tree):
        svg = render_svg(itcs_tree)
        for code in ("PROG", "ALGO"):
            assert f">{code}</text>" in svg

    def test_title_escaped(self, itcs_tree):
        svg = render_svg(itcs_tree, title="A & B <tree>")
        assert "A &amp; B &lt;tree>" in svg
        ET.fromstring(svg)

    def test_tooltips_carry_labels_and_counts(self, itcs_tree):
        svg = render_svg(itcs_tree)
        assert "<title>Programming (16)</title>" in svg

    def test_custom_size(self, itcs_tree):
        svg = render_svg(itcs_tree, size=300)
        assert 'width="300"' in svg
