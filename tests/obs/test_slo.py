"""SLO burn-rate derivation from the live metrics registry."""

from __future__ import annotations

from repro.obs import MetricsRegistry, SloMonitor


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_monitor(registry, clock, **kwargs):
    kwargs.setdefault("availability_target", 0.999)
    kwargs.setdefault("latency_target", 0.95)
    kwargs.setdefault("latency_threshold_ms", 100.0)
    kwargs.setdefault("windows", (("5m", 300.0), ("1h", 3600.0)))
    kwargs.setdefault("min_sample_interval", 0.0)
    return SloMonitor(registry, clock=clock, **kwargs)


def record_requests(registry, n, *, status="2xx", latency=0.01,
                    route="GET /api/v1/stats"):
    for _ in range(n):
        registry.counter(
            "http_requests_total", route=route, status=status,
        ).inc()
        registry.histogram(
            "http_request_seconds", route=route,
        ).observe(latency)


class TestAvailability:
    def test_all_good_traffic_burns_nothing(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock)
        monitor.sample(force=True)  # baseline at t0
        record_requests(registry, 100)
        clock.advance(60)
        report = monitor.report()
        window = report["windows"]["5m"]
        assert window["requests"] == 100
        assert window["errors"] == 0
        assert window["availability"] == 1.0
        assert window["availability_burn"] == 0.0
        assert report["targets"]["availability"] == 0.999

    def test_error_traffic_reports_burn_rate(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock)
        monitor.sample(force=True)
        record_requests(registry, 99)
        record_requests(registry, 1, status="5xx")
        clock.advance(60)
        window = monitor.report()["windows"]["5m"]
        assert window["errors"] == 1
        assert window["availability"] == 0.99
        # bad ratio 1% against a 0.1% budget: burning 10x.
        assert window["availability_burn"] == 10.0

    def test_4xx_is_the_clients_budget(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock)
        monitor.sample(force=True)
        record_requests(registry, 50, status="4xx")
        clock.advance(60)
        window = monitor.report()["windows"]["5m"]
        assert window["requests"] == 50
        assert window["errors"] == 0
        assert window["availability"] == 1.0


class TestLatency:
    def test_fast_traffic_meets_the_objective(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock)
        monitor.sample(force=True)
        record_requests(registry, 40, latency=0.005)
        clock.advance(60)
        window = monitor.report()["windows"]["5m"]
        assert window["latency_ok_ratio"] == 1.0
        assert window["latency_burn"] == 0.0
        assert window["slow"] == 0

    def test_slow_traffic_burns_latency_budget(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock)
        monitor.sample(force=True)
        record_requests(registry, 90, latency=0.005)
        record_requests(registry, 10, latency=0.4)  # over 100ms threshold
        clock.advance(60)
        window = monitor.report()["windows"]["5m"]
        assert window["slow"] == 10
        assert window["latency_ok_ratio"] == 0.9
        # 10% slow against a 5% budget: burning 2x.
        assert window["latency_burn"] == 2.0

    def test_p99_reflects_the_windows_latency_diff(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock)
        monitor.sample(force=True)
        record_requests(registry, 100, latency=0.004)
        clock.advance(60)
        window = monitor.report()["windows"]["5m"]
        # Bucket-resolution answer: 0.004s falls in the le=0.005 bucket.
        assert window["p99_ms"] == 5.0


class TestWindowing:
    def test_old_samples_fall_out_of_the_short_window(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock)
        monitor.sample(force=True)
        record_requests(registry, 10, status="5xx")
        clock.advance(60)
        monitor.sample(force=True)  # errors land inside this sample
        clock.advance(600)  # ...and then age past the 5m window
        report = monitor.report()
        assert report["windows"]["5m"]["errors"] == 0
        # The 1h window still sees them.
        assert report["windows"]["1h"]["errors"] == 10

    def test_req_s_uses_the_observed_span(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock)
        monitor.sample(force=True)
        record_requests(registry, 120)
        clock.advance(60)
        window = monitor.report()["windows"]["5m"]
        assert window["req_s"] == 2.0
        assert window["span_s"] == 60.0

    def test_min_sample_interval_rate_limits_collection(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock, min_sample_interval=5.0)
        # Construction seeds exactly one baseline; rate-limited reads
        # inside the interval never add another.
        monitor.report()
        monitor.report()
        assert monitor.report()["totals"]["samples"] == 1
        clock.advance(6)
        monitor.report()
        assert len(monitor._samples) == 2
        # force bypasses the interval.
        monitor.sample(force=True)
        assert len(monitor._samples) == 3

    def test_empty_registry_reports_cleanly(self):
        monitor = make_monitor(MetricsRegistry(), FakeClock())
        report = monitor.report()
        window = report["windows"]["5m"]
        assert window["requests"] == 0
        assert window["availability"] == 1.0
        assert window["availability_burn"] == 0.0
        assert window["p99_ms"] == 0.0


class TestExport:
    def test_export_mirrors_the_report_into_gauges(self):
        registry, clock = MetricsRegistry(), FakeClock()
        monitor = make_monitor(registry, clock)
        monitor.sample(force=True)
        record_requests(registry, 99)
        record_requests(registry, 1, status="5xx")
        clock.advance(60)
        monitor.export()
        gauges = registry.export()["gauges"]
        assert gauges['carcs_slo_target{slo="availability"}']["value"] \
            == 0.999
        assert gauges[
            'carcs_slo_burn_rate{slo="availability",window="5m"}'
        ]["value"] == 10.0
        assert gauges[
            'carcs_slo_ratio{slo="latency",window="1h"}'
        ]["value"] == 1.0

    def test_env_overrides_pick_up_targets(self, monkeypatch):
        monkeypatch.setenv("CARCS_SLO_AVAILABILITY", "0.99")
        monkeypatch.setenv("CARCS_SLO_LATENCY_MS", "250")
        monkeypatch.setenv("CARCS_SLO_LATENCY_TARGET", "0.9")
        monitor = SloMonitor(MetricsRegistry())
        assert monitor.availability_target == 0.99
        assert monitor.latency_threshold_ms == 250.0
        assert monitor.latency_target == 0.9

    def test_bad_env_values_fall_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv("CARCS_SLO_AVAILABILITY", "not-a-number")
        monitor = SloMonitor(MetricsRegistry())
        assert monitor.availability_target == 0.999
