"""Trace retention and sampling under concurrency.

Two hostile environments for the flight recorder: a multi-threaded
:class:`~repro.jobs.worker.WorkerPool` running linked job segments in
parallel, and a live threaded HTTP server hammered while an aggressive
sampler drops almost everything.  The invariants: spans never leak
across traces, every segment stays internally well-formed, and the
error/slow always-keep rules survive the sampler under load.
"""

from __future__ import annotations

import threading
import time
import urllib.error
import urllib.request

from repro.corpus.seed import seed_all
from repro.db import Database
from repro.jobs import JobQueue, WorkerPool
from repro.obs import (
    MODE_ALL,
    MODE_SAMPLED,
    REMOTE_PARENT_ATTR,
    TraceStore,
    Tracer,
)
from repro.obs import trace as _trace
from repro.web import CarCsApi
from repro.web.server import ApiServer


def make_tracer(**kwargs):
    kwargs.setdefault("mode", MODE_ALL)
    kwargs.setdefault("sample_every", 1)
    kwargs.setdefault("slow_ms", 1e9)
    return Tracer(TraceStore(capacity=256), **kwargs)


def well_formed(root, trace_id: str) -> int:
    """Walk a span tree checking parent/trace consistency; span count."""
    count = 0
    stack = [(root, None)]
    while stack:
        span, parent = stack.pop()
        count += 1
        assert span.trace_id == trace_id
        if parent is not None:
            assert span.parent_id == parent.span_id
        for child in span.children:
            stack.append((child, span))
    return count


class TestConcurrentJobSegments:
    def test_parallel_workers_never_interleave_trace_segments(self):
        tracer = make_tracer()
        queue = JobQueue(Database("conc-jobs"))
        jobs = 12

        def handler(ctx):
            # A child span plus a sleep long enough that worker threads
            # genuinely overlap — interleaving would cross-wire these.
            with _trace.span("work.step", job=ctx.job["id"]):
                time.sleep(0.01)
            return "ok"

        trace_ids = []
        job_ids = {}
        for i in range(jobs):
            trace_id = f"{0xabc0000 + i:024x}"
            trace_ids.append(trace_id)
            with tracer.trace("POST /jobs", trace_id=trace_id) as root:
                job = queue.enqueue("noop", {"i": i})
            job_ids[trace_id] = (job["id"], root.span_id)

        pool = WorkerPool(
            queue, {"noop": handler}, size=4, poll_interval=0.005,
            tracer=tracer, name="conc",
        ).start()
        try:
            assert pool.drain(timeout=30)
        finally:
            pool.stop()

        for trace_id in trace_ids:
            job_id, enqueue_span = job_ids[trace_id]
            segments = tracer.store.segments(trace_id)
            assert [seg.root.name for seg in segments] == \
                ["POST /jobs", "job.run"]
            job_root = segments[1].root
            # The segment links to *this* trace's enqueue span and ran
            # *this* trace's job — never a neighbour's.
            assert job_root.attributes[REMOTE_PARENT_ATTR] == enqueue_span
            assert job_root.attributes["job"] == job_id
            assert job_root.attributes["outcome"] == "done"
            # Internally consistent, and exactly one work.step — the
            # one this trace's handler opened (db spans from the queue
            # bookkeeping ride along in the same segment).
            well_formed(job_root, trace_id)
            steps = [s for s in job_root.walk() if s.name == "work.step"]
            assert len(steps) == 1
            assert steps[0].attributes["job"] == job_id

    def test_slow_always_keep_survives_sampling_in_the_pool(self):
        # sample_every is astronomically high, but every job sleeps past
        # slow_ms — the slow rule must retain all of them anyway.
        tracer = make_tracer(
            mode=MODE_SAMPLED, sample_every=10**6, slow_ms=1.0,
        )
        queue = JobQueue(Database("conc-slow"))

        def handler(ctx):
            time.sleep(0.005)
            return "ok"

        for i in range(8):
            queue.enqueue("noop", {"i": i})
        pool = WorkerPool(
            queue, {"noop": handler}, size=4, poll_interval=0.005,
            tracer=tracer, name="slow",
        ).start()
        try:
            assert pool.drain(timeout=30)
        finally:
            pool.stop()

        records = tracer.store.records()
        assert len(records) == 8
        assert all(r.retained_by in ("slow", "sampled") for r in records)
        assert sum(r.retained_by == "slow" for r in records) >= 7


class TestSamplerUnderThreadedLoad:
    def test_error_traces_survive_an_aggressive_sampler(self):
        repo = seed_all()
        tracer = make_tracer(
            mode=MODE_SAMPLED, sample_every=10**6, slow_ms=1e9,
        )
        api = CarCsApi(repo, tracer=tracer)

        @api.router.route("GET", "/api/v1/boom")
        def boom(request):
            raise RuntimeError("kaboom")

        ok_ids: list[str] = []
        error_ids: list[str] = []
        failures: list[object] = []
        sink = threading.Lock()

        with ApiServer(api, port=0, threaded=True) as srv:
            def hammer(worker: int):
                try:
                    for n in range(6):
                        if (worker + n) % 3 == 0:
                            try:
                                urllib.request.urlopen(
                                    f"{srv.url}/api/v1/boom", timeout=30
                                )
                            except urllib.error.HTTPError as err:
                                assert err.code == 500
                                with sink:
                                    error_ids.append(
                                        err.headers["x-trace-id"]
                                    )
                        else:
                            with urllib.request.urlopen(
                                f"{srv.url}/api/v1/stats", timeout=30
                            ) as response:
                                assert response.status == 200
                                with sink:
                                    ok_ids.append(
                                        response.headers["x-trace-id"]
                                    )
                except Exception as exc:  # pragma: no cover - failure path
                    failures.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(w,))
                for w in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)
            assert not any(t.is_alive() for t in threads), "worker hung"
            assert failures == []

        # Every error trace beat the sampler; nearly every OK trace
        # (all but possibly the first sampled one) was dropped.
        assert len(set(error_ids + ok_ids)) == len(error_ids + ok_ids)
        for trace_id in error_ids:
            record = tracer.store.get(trace_id)
            assert record is not None
            assert record.retained_by == "error"
            assert record.root.status == "error"
        retained_ok = [
            tid for tid in ok_ids if tracer.store.get(tid) is not None
        ]
        assert len(retained_ok) <= 1
        stats = tracer.stats()
        assert stats["dropped"] >= len(ok_ids) - 1
        assert stats["retained"] >= len(error_ids)
