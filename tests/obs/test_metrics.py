"""The observability substrate: metrics math + structured request log."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    RequestLog,
    new_request_id,
)


class TestCounter:
    def test_counts_up(self):
        registry = MetricsRegistry()
        c = registry.counter("events_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("req", route="a").inc()
        registry.counter("req", route="b").inc(2)
        assert registry.counter("req", route="a").value == 1
        assert registry.counter("req", route="b").value == 2

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_concurrent_increments_do_not_lose_counts(self):
        registry = MetricsRegistry()
        c = registry.counter("hot")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogramBucketMath:
    def test_observations_land_in_correct_buckets(self):
        h = Histogram(buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 2.0, 4.9, 100.0):
            h.observe(v)
        # bounds are inclusive upper edges: 1.0 -> first bucket, 2.0 -> second
        assert h.counts == [2, 2, 1, 1]   # last slot is +inf
        assert h.count == 6
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 100.0)

    def test_cumulative_is_monotone_and_ends_at_total(self):
        h = Histogram(buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        cumulative = h.cumulative()
        counts = [n for _, n in cumulative]
        assert counts == sorted(counts)
        assert cumulative[-1] == (float("inf"), 4)

    def test_quantile_estimates_bucket_upper_bound(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(90):
            h.observe(0.5)
        for _ in range(10):
            h.observe(3.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.99) == 4.0

    def test_quantile_of_empty_histogram(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_rejects_empty_or_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_default_buckets_are_sorted_and_subsecond_heavy(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert sum(1 for b in DEFAULT_LATENCY_BUCKETS if b < 1.0) >= 8

    def test_export_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests", route="GET /x").inc()
        registry.histogram("latency", route="GET /x").observe(0.003)
        registry.gauge("depth").set(2)
        out = registry.export()
        assert out["counters"]['requests{route="GET /x"}']["value"] == 1
        assert out["gauges"]["depth"]["value"] == 2
        hist = out["histograms"]['latency{route="GET /x"}']
        assert hist["count"] == 1
        assert hist["buckets"][-1]["le"] == "+inf"


class TestRequestLog:
    def test_records_are_structured_and_stamped(self):
        log = RequestLog()
        entry = log.record(request_id="abc", method="GET", status=200)
        assert entry["request_id"] == "abc"
        assert entry["ts"] > 0
        assert log.tail(1)[0]["method"] == "GET"

    def test_ring_bound_and_dropped_counter(self):
        log = RequestLog(capacity=3)
        for i in range(5):
            log.record(request_id=str(i))
        assert len(log) == 3
        assert log.dropped == 2
        assert [r["request_id"] for r in log.tail()] == ["2", "3", "4"]

    def test_find_by_request_id(self):
        log = RequestLog()
        log.record(request_id="one", status=200)
        log.record(request_id="two", status=500)
        assert log.find("two")[0]["status"] == 500
        assert log.find("nope") == []

    def test_request_ids_are_unique(self):
        ids = {new_request_id() for _ in range(1000)}
        assert len(ids) == 1000

    def test_drops_feed_the_registry_gauge(self):
        log = RequestLog(capacity=2)
        log.metrics = MetricsRegistry()
        for i in range(5):
            log.record(request_id=str(i))
        gauge = log.metrics.gauge("carcs_request_log_dropped")
        assert gauge.value == 3 == log.dropped

    def test_snapshot_carries_loss_accounting(self):
        log = RequestLog(capacity=2)
        for i in range(3):
            log.record(request_id=str(i))
        snap = log.snapshot(n=1)
        assert snap["capacity"] == 2
        assert snap["size"] == 2
        assert snap["dropped"] == 1
        assert [r["request_id"] for r in snap["records"]] == ["2"]

    def test_clear_resets_the_drop_counter(self):
        log = RequestLog(capacity=1)
        log.record(request_id="a")
        log.record(request_id="b")
        log.clear()
        assert log.dropped == 0 and len(log) == 0


class TestPrometheusExposition:
    def test_label_values_are_escaped(self):
        from repro.obs.metrics import escape_label_value

        assert escape_label_value('say "hi"\n\\x') == 'say \\"hi\\"\\n\\\\x'

    def test_exposition_covers_all_kinds(self):
        from repro.obs import render_prometheus

        registry = MetricsRegistry()
        registry.counter("requests_total", route='GET "/x"').inc(3)
        registry.gauge("depth").set(2.5)
        registry.histogram(
            "latency_seconds", buckets=(0.1, 1.0)
        ).observe(0.05)
        text = render_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE requests_total counter" in lines
        assert 'requests_total{route="GET \\"/x\\""} 3' in lines
        assert "# TYPE depth gauge" in lines
        assert "depth 2.5" in lines
        assert "# TYPE latency_seconds histogram" in lines
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="1"} 1' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 1' in lines
        assert "latency_seconds_sum 0.05" in lines
        assert "latency_seconds_count 1" in lines
        assert text.endswith("\n")

    def test_type_line_emitted_once_per_metric_name(self):
        from repro.obs import render_prometheus

        registry = MetricsRegistry()
        registry.counter("req_total", route="a").inc()
        registry.counter("req_total", route="b").inc()
        text = render_prometheus(registry)
        assert text.count("# TYPE req_total counter") == 1
