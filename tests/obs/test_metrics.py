"""The observability substrate: metrics math + structured request log."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    RequestLog,
    new_request_id,
)


class TestCounter:
    def test_counts_up(self):
        registry = MetricsRegistry()
        c = registry.counter("events_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("req", route="a").inc()
        registry.counter("req", route="b").inc(2)
        assert registry.counter("req", route="a").value == 1
        assert registry.counter("req", route="b").value == 2

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_concurrent_increments_do_not_lose_counts(self):
        registry = MetricsRegistry()
        c = registry.counter("hot")

        def spin():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 80_000


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogramBucketMath:
    def test_observations_land_in_correct_buckets(self):
        h = Histogram(buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 2.0, 4.9, 100.0):
            h.observe(v)
        # bounds are inclusive upper edges: 1.0 -> first bucket, 2.0 -> second
        assert h.counts == [2, 2, 1, 1]   # last slot is +inf
        assert h.count == 6
        assert h.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 4.9 + 100.0)

    def test_cumulative_is_monotone_and_ends_at_total(self):
        h = Histogram(buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        cumulative = h.cumulative()
        counts = [n for _, n in cumulative]
        assert counts == sorted(counts)
        assert cumulative[-1] == (float("inf"), 4)

    def test_quantile_estimates_bucket_upper_bound(self):
        h = Histogram(buckets=(1.0, 2.0, 4.0))
        for _ in range(90):
            h.observe(0.5)
        for _ in range(10):
            h.observe(3.0)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.99) == 4.0

    def test_quantile_of_empty_histogram(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_rejects_empty_or_duplicate_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_default_buckets_are_sorted_and_subsecond_heavy(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert sum(1 for b in DEFAULT_LATENCY_BUCKETS if b < 1.0) >= 8

    def test_export_shape(self):
        registry = MetricsRegistry()
        registry.counter("requests", route="GET /x").inc()
        registry.histogram("latency", route="GET /x").observe(0.003)
        registry.gauge("depth").set(2)
        out = registry.export()
        assert out["counters"]["requests{route=GET /x}"]["value"] == 1
        assert out["gauges"]["depth"]["value"] == 2
        hist = out["histograms"]["latency{route=GET /x}"]
        assert hist["count"] == 1
        assert hist["buckets"][-1]["le"] == "+inf"


class TestRequestLog:
    def test_records_are_structured_and_stamped(self):
        log = RequestLog()
        entry = log.record(request_id="abc", method="GET", status=200)
        assert entry["request_id"] == "abc"
        assert entry["ts"] > 0
        assert log.tail(1)[0]["method"] == "GET"

    def test_ring_bound_and_dropped_counter(self):
        log = RequestLog(capacity=3)
        for i in range(5):
            log.record(request_id=str(i))
        assert len(log) == 3
        assert log.dropped == 2
        assert [r["request_id"] for r in log.tail()] == ["2", "3", "4"]

    def test_find_by_request_id(self):
        log = RequestLog()
        log.record(request_id="one", status=200)
        log.record(request_id="two", status=500)
        assert log.find("two")[0]["status"] == 500
        assert log.find("nope") == []

    def test_request_ids_are_unique(self):
        ids = {new_request_id() for _ in range(1000)}
        assert len(ids) == 1000
