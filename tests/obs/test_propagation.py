"""Cross-process trace context: the traceparent header, multi-segment
retention, and fleet-wide stitching/rendering."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.jobs import JobQueue, run_pending
from repro.obs import (
    MODE_ALL,
    REMOTE_PARENT_ATTR,
    TraceStore,
    Tracer,
    current_traceparent,
    format_traceparent,
    parse_traceparent,
    render_tree,
    stitch_trace,
)


def make_tracer(**kwargs):
    kwargs.setdefault("mode", MODE_ALL)
    kwargs.setdefault("sample_every", 1)
    kwargs.setdefault("slow_ms", 1e9)
    return Tracer(TraceStore(capacity=64), **kwargs)


class TestTraceparentHeader:
    def test_format_parse_roundtrip(self):
        header = format_traceparent("deadbeefcafef00d", "12345678")
        assert header == "00-deadbeefcafef00d-12345678-01"
        assert parse_traceparent(header) == ("deadbeefcafef00d", "12345678")

    def test_full_w3c_lengths_accepted(self):
        header = "00-" + "a" * 32 + "-" + "b" * 16 + "-01"
        assert parse_traceparent(header) == ("a" * 32, "b" * 16)

    @pytest.mark.parametrize("bad", [
        None,
        "",
        "not a header",
        "00-deadbeefcafef00d-12345678",          # missing flags
        "00-deadbeefcafef00d-12345678-01-extra",  # too many parts
        "0-deadbeefcafef00d-12345678-01",         # short version
        "00-deadbeef-12345678-01",                # trace id too short
        "00-" + "a" * 33 + "-12345678-01",        # trace id too long
        "00-deadbeefcafef00d-1234-01",            # span id too short
        "00-deadbeefcafef00d-" + "b" * 17 + "-01",
        "00-deadbeefcafeXXXd-12345678-01",        # non-hex
    ])
    def test_malformed_headers_are_rejected(self, bad):
        assert parse_traceparent(bad) is None

    def test_uppercase_hex_is_normalized(self):
        assert parse_traceparent("00-DEADBEEFCAFEF00D-12345678-01") == \
            ("deadbeefcafef00d", "12345678")

    def test_current_traceparent_requires_an_active_trace(self):
        assert current_traceparent() is None
        tracer = make_tracer()
        with tracer.trace("op") as root:
            header = current_traceparent()
            assert header is not None
            trace_id, span_id = parse_traceparent(header)
            assert trace_id == root.trace_id
            assert span_id == root.span_id
        assert current_traceparent() is None

    def test_current_traceparent_names_the_innermost_span(self):
        from repro.obs import span

        tracer = make_tracer()
        with tracer.trace("outer"):
            with span("inner") as child:
                _, span_id = parse_traceparent(current_traceparent())
                assert span_id == child.span_id


class TestTraceStoreSegments:
    def test_same_trace_id_accumulates_segments(self):
        tracer = make_tracer()
        with tracer.trace("request", trace_id="shared-1"):
            pass
        with tracer.trace("job.run", trace_id="shared-1"):
            pass
        segments = tracer.store.segments("shared-1")
        assert [seg.root.name for seg in segments] == ["request", "job.run"]
        # get() keeps the original single-segment view: the first
        # (originating) segment.
        assert tracer.store.get("shared-1").root.name == "request"

    def test_summaries_and_records_flatten_segments(self):
        tracer = make_tracer()
        with tracer.trace("a", trace_id="t1"):
            pass
        with tracer.trace("b", trace_id="t1"):
            pass
        with tracer.trace("c", trace_id="t2"):
            pass
        names = {s["name"] for s in tracer.store.summaries()}
        assert names == {"a", "b", "c"}

    def test_segments_per_trace_are_bounded(self):
        store = TraceStore(capacity=8)
        tracer = Tracer(store, mode=MODE_ALL, sample_every=1, slow_ms=1e9)
        for i in range(TraceStore.MAX_SEGMENTS + 5):
            with tracer.trace(f"seg-{i}", trace_id="hot"):
                pass
        segments = store.segments("hot")
        assert len(segments) == TraceStore.MAX_SEGMENTS
        # Oldest segments dropped, newest kept.
        assert segments[-1].root.name == f"seg-{TraceStore.MAX_SEGMENTS + 4}"

    def test_unknown_trace_has_no_segments(self):
        assert TraceStore().segments("nope") == []


def _tree(name, span_id, children=(), attrs=None, start=0.0):
    return {
        "name": name,
        "span_id": span_id,
        "trace_id": "t",
        "start_ts": start,
        "wall_ms": 1.0,
        "cpu_ms": 0.5,
        "self_ms": 0.5,
        "status": "ok",
        "attributes": dict(attrs or {}),
        "children": list(children),
    }


class TestStitchTrace:
    def test_segments_attach_under_their_remote_parent(self):
        hop = _tree("front.write", "aaaa1111")
        router = _tree("front POST", "r00t0000", children=[hop])
        primary = _tree(
            "POST /api/v2/jobs/classify", "bbbb2222",
            attrs={REMOTE_PARENT_ATTR: "aaaa1111"}, start=1.0,
        )
        stitched = stitch_trace("t", [
            ("router", router), ("primary", primary),
        ])
        assert stitched["root"]["name"] == "front POST"
        assert stitched["processes"] == ["primary", "router"]
        assert stitched["segments"] == 2
        assert stitched["unlinked"] == []
        assert hop["children"][0]["name"] == "POST /api/v2/jobs/classify"
        assert hop["children"][0]["process"] == "primary"
        assert hop["children"][0]["parent_id"] == "aaaa1111"

    def test_job_segment_attaches_transitively(self):
        # router -> primary -> job: the job's remote parent lives inside
        # the primary's segment, which itself attached under the router.
        hop = _tree("front.write", "hop00001")
        router = _tree("front POST", "root0001", children=[hop])
        enqueue = _tree("jobs.enqueue", "enq00001")
        primary = _tree(
            "POST /api/v2/jobs/classify", "pri00001",
            attrs={REMOTE_PARENT_ATTR: "hop00001"}, children=[enqueue],
            start=1.0,
        )
        job = _tree(
            "job.run", "job00001",
            attrs={REMOTE_PARENT_ATTR: "enq00001"}, start=2.0,
        )
        stitched = stitch_trace("t", [
            ("router", router), ("primary", primary), ("primary", job),
        ])
        assert stitched["unlinked"] == []
        assert enqueue["children"][0]["name"] == "job.run"
        assert stitched["spans"] == 5

    def test_unknown_parent_surfaces_as_unlinked(self):
        orphan = _tree(
            "job.run", "job00001",
            attrs={REMOTE_PARENT_ATTR: "gone0000"}, start=1.0,
        )
        root = _tree("GET /x", "root0001")
        stitched = stitch_trace("t", [("node", root), ("node", orphan)])
        assert stitched["root"]["name"] == "GET /x"
        assert [t["name"] for t in stitched["unlinked"]] == ["job.run"]

    def test_mutually_referencing_segments_terminate(self):
        a = _tree("a", "aaaa0001", attrs={REMOTE_PARENT_ATTR: "bbbb0001"})
        b = _tree("b", "bbbb0001", attrs={REMOTE_PARENT_ATTR: "aaaa0001"},
                  start=1.0)
        stitched = stitch_trace("t", [("p1", a), ("p2", b)])
        # One of the two attaches; the cycle guard keeps the other top
        # level instead of looping forever.
        assert stitched["segments"] == 2
        assert stitched["root"] is not None

    def test_self_referential_root_stays_unlinked(self):
        selfie = _tree("a", "aaaa0001",
                       attrs={REMOTE_PARENT_ATTR: "aaaa0001"})
        stitched = stitch_trace("t", [("p", selfie)])
        assert stitched["root"] is None or stitched["root"]["name"] == "a"

    def test_render_tree_labels_processes(self):
        hop = _tree("front.read", "aaaa1111")
        router = _tree("front GET", "r00t0000", children=[hop])
        replica = _tree(
            "GET /api/v2/materials", "bbbb2222",
            attrs={REMOTE_PARENT_ATTR: "aaaa1111"}, start=1.0,
        )
        text = render_tree(stitch_trace("t", [
            ("router", router), ("replica-0", replica),
        ]))
        assert "trace t" in text
        assert "@router" in text
        assert "@replica-0" in text
        assert "front.read" in text
        # The stitching attribute itself is plumbing, not output.
        assert REMOTE_PARENT_ATTR not in text

    def test_render_tree_shows_unlinked_segments(self):
        root = _tree("GET /x", "root0001")
        orphan = _tree("job.run", "job00001",
                       attrs={REMOTE_PARENT_ATTR: "gone0000"}, start=1.0)
        text = render_tree(stitch_trace("t", [
            ("node", root), ("worker", orphan),
        ]))
        assert "unlinked segment" in text
        assert "job.run" in text


class TestJobTraceLinking:
    def test_enqueue_persists_the_traceparent(self):
        tracer = make_tracer()
        queue = JobQueue(Database("link-test"))
        with tracer.trace("POST /jobs", trace_id="beef0001beef0001beef0001") as root:
            job = queue.enqueue("noop", {})
            expected = format_traceparent("beef0001beef0001beef0001", root.span_id)
        assert queue.get(job["id"])["trace_context"] == expected

    def test_enqueue_without_a_trace_stores_nothing(self):
        queue = JobQueue(Database("link-test-2"))
        job = queue.enqueue("noop", {})
        assert queue.get(job["id"])["trace_context"] is None

    def test_job_run_opens_a_segment_in_the_request_trace(self):
        tracer = make_tracer()
        queue = JobQueue(Database("link-test-3"))
        with tracer.trace("POST /jobs", trace_id="beef0002beef0002beef0002") as root:
            queue.enqueue("noop", {})
            enqueue_span = root.span_id
        assert run_pending(queue, {"noop": lambda ctx: "ok"},
                           tracer=tracer) == 1
        segments = tracer.store.segments("beef0002beef0002beef0002")
        assert [seg.root.name for seg in segments] == \
            ["POST /jobs", "job.run"]
        job_root = segments[1].root
        assert job_root.attributes[REMOTE_PARENT_ATTR] == enqueue_span
        assert job_root.attributes["outcome"] == "done"
        assert job_root.attributes["kind"] == "noop"

    def test_failed_job_segment_is_marked_errored(self):
        from repro.jobs import FatalJobError

        tracer = make_tracer()
        queue = JobQueue(Database("link-test-4"), base_backoff=0.0)

        def broken(ctx):
            raise FatalJobError("kaput")

        with tracer.trace("POST /jobs", trace_id="beef0003beef0003beef0003"):
            queue.enqueue("broken", {})
        run_pending(queue, {"broken": broken}, tracer=tracer)
        job_root = tracer.store.segments("beef0003beef0003beef0003")[1].root
        assert job_root.status == "error"
        assert "kaput" in job_root.error
        assert job_root.attributes["outcome"] == "dead"
