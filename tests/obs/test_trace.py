"""The tracing substrate: spans, context propagation, retention, stores."""

import threading

import pytest

from repro.obs import MetricsRegistry
from repro.obs.trace import (
    MODE_ALL,
    MODE_OFF,
    MODE_SAMPLED,
    NULL_SPAN,
    Span,
    TraceRecord,
    TraceStore,
    Tracer,
    current_span,
    current_trace_id,
    render_text,
    span,
)


def tracer(**kwargs):
    kwargs.setdefault("mode", MODE_ALL)
    kwargs.setdefault("sample_every", 1)
    kwargs.setdefault("slow_ms", 1e9)  # never auto-slow in unit tests
    return Tracer(TraceStore(capacity=kwargs.pop("capacity", 16)), **kwargs)


class TestSpanMath:
    def test_finish_freezes_wall_and_cpu_time(self):
        s = Span("work", "t1")
        s.finish()
        first = s.wall_s
        s.finish()  # idempotent
        assert s.wall_s == first
        assert s.wall_s >= 0.0
        assert s.cpu_s is not None

    def test_self_time_subtracts_finished_children(self):
        root = Span("root", "t1")
        child = Span("child", "t1", root.span_id)
        root.children.append(child)
        child.finish()
        root.finish()
        assert root.self_s == pytest.approx(
            max(0.0, root.wall_s - child.wall_s)
        )

    def test_walk_is_depth_first(self):
        root = Span("a", "t1")
        b, c = Span("b", "t1"), Span("c", "t1")
        d = Span("d", "t1")
        b.children.append(d)
        root.children.extend([b, c])
        assert [s.name for s in root.walk()] == ["a", "b", "d", "c"]

    def test_as_dict_nests_children_and_flags_errors(self):
        root = Span("root", "t1", attributes={"k": "v"})
        child = Span("boom", "t1", root.span_id)
        child.finish(ValueError("nope"))
        root.children.append(child)
        root.finish()
        d = root.as_dict()
        assert d["attributes"] == {"k": "v"}
        assert d["children"][0]["status"] == "error"
        assert "ValueError" in d["children"][0]["error"]
        assert d["children"][0]["parent_id"] == root.span_id


class TestContextPropagation:
    def test_span_without_active_trace_is_the_shared_null(self):
        assert current_span() is None
        scope = span("db.insert", table="materials")
        assert scope is NULL_SPAN
        assert not scope
        with scope as s:
            s.set(rows=1)  # no-op, no error

    def test_nested_spans_parent_correctly_and_restore_context(self):
        t = tracer()
        with t.trace("root") as root:
            trace_id = root.trace_id
            assert current_trace_id() == trace_id
            with span("outer") as outer:
                assert current_span() is outer
                with span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                assert current_span() is outer
            assert current_span() is root
        assert current_span() is None
        tree = t.store.get(trace_id).root
        assert [c.name for c in tree.children] == ["outer"]
        (outer_span,) = tree.children
        assert [c.name for c in outer_span.children] == ["inner"]

    def test_exception_inside_span_marks_error_and_propagates(self):
        t = tracer()
        with pytest.raises(RuntimeError):
            with t.trace("root"):
                with span("work"):
                    raise RuntimeError("boom")
        record = t.store.summaries()[0]
        full = t.store.get(record["trace_id"])
        (child,) = full.root.children
        assert child.status == "error"
        assert "RuntimeError" in child.error

    def test_nested_trace_call_becomes_a_child_span(self):
        t = tracer()
        with t.trace("root") as root:
            with t.trace("inner") as inner:
                assert inner.trace_id == root.trace_id
                assert inner.parent_id == root.span_id
        assert len(t.store) == 1

    def test_threads_get_disjoint_contexts(self):
        t = tracer()
        seen = {}
        barrier = threading.Barrier(2)

        def work(tag):
            with t.trace(tag) as root:
                barrier.wait(timeout=10)  # both traces alive at once
                with span("child"):
                    seen[tag] = current_trace_id()
            assert current_span() is None

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join(30)
        assert len(set(seen.values())) == 2
        roots = {r.root.name: r for r in map(
            t.store.get, set(seen.values())
        )}
        for tag, trace_id in seen.items():
            record = roots[tag]
            assert record.trace_id == trace_id
            assert [c.name for c in record.root.children] == ["child"]


class TestRetention:
    def test_mode_off_produces_no_spans_at_all(self):
        t = tracer(mode=MODE_OFF)
        assert not t.enabled
        with t.trace("root") as root:
            assert root is NULL_SPAN
            assert span("child") is NULL_SPAN
        assert len(t.store) == 0
        assert t.stats()["started"] == 0

    def test_sampled_mode_keeps_every_nth(self):
        t = tracer(mode=MODE_SAMPLED, sample_every=3)
        for _ in range(9):
            with t.trace("root"):
                pass
        assert t.stats() == {
            "started": 9, "retained": 3, "dropped": 6,
            "stored": 3, "evicted": 0,
        }
        assert all(
            s["retained_by"] == "sampled" for s in t.store.summaries()
        )

    def test_error_overrides_the_sampler(self):
        t = tracer(mode=MODE_SAMPLED, sample_every=10**6)
        with t.trace("fine"):
            pass  # head-sampled (first trace)
        with t.trace("broken") as root:
            root.mark_error("http 500")
        summaries = t.store.summaries()
        assert [s["retained_by"] for s in summaries] == ["error", "sampled"]

    def test_slow_span_overrides_the_sampler(self):
        t = tracer(mode=MODE_SAMPLED, sample_every=10**6, slow_ms=0.0)
        with t.trace("skipped-but-slow"):
            pass
        with t.trace("also-slow"):
            pass
        # Both exceed the (zero) slow threshold; the second would have
        # been sampled out but the slow override retains it anyway.
        assert [s["retained_by"] for s in t.store.summaries()] \
            == ["slow", "slow"]
        assert all(s["slow"] for s in t.store.summaries())

    def test_mode_all_retains_everything(self):
        t = tracer(mode=MODE_ALL, sample_every=10**6)
        for _ in range(4):
            with t.trace("root"):
                pass
        assert t.stats()["retained"] == 4
        assert {s["retained_by"] for s in t.store.summaries()} == {"all"}

    def test_configure_none_rereads_environment(self, monkeypatch):
        monkeypatch.setenv("CARCS_TRACE", "off")
        monkeypatch.setenv("CARCS_TRACE_SAMPLE", "7")
        monkeypatch.setenv("CARCS_TRACE_SLOW_MS", "5.5")
        t = Tracer()
        assert (t.mode, t.sample_every, t.slow_ms) == (MODE_OFF, 7, 5.5)
        t.configure(mode=MODE_ALL)  # explicit overrides env
        assert t.mode == MODE_ALL


class TestTraceStore:
    def test_bounded_with_eviction_count(self):
        store = TraceStore(capacity=2)
        t = Tracer(store, mode=MODE_ALL, slow_ms=1e9)
        ids = []
        for _ in range(5):
            with t.trace("root") as root:
                ids.append(root.trace_id)
        assert len(store) == 2
        assert store.evicted == 3
        assert store.get(ids[0]) is None
        assert store.get(ids[-1]) is not None
        # summaries are newest-first
        assert [s["trace_id"] for s in store.summaries()] == ids[:2:-1]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)


class TestMetricsBridge:
    def test_span_histograms_and_trace_counter(self):
        t = tracer(mode=MODE_SAMPLED, sample_every=2)
        t.registry = MetricsRegistry()
        for _ in range(4):
            with t.trace("http.request"):
                with span("db.insert"):
                    pass
        t.flush_metrics()  # timings are buffered until a scrape drains them
        export = t.registry.export()
        hists = export["histograms"]
        assert hists['carcs_span_seconds{span="http.request"}']["count"] == 4
        assert hists['carcs_span_seconds{span="db.insert"}']["count"] == 4
        counters = export["counters"]
        assert counters['carcs_traces_total{retained="true"}']["value"] == 2
        assert counters['carcs_traces_total{retained="false"}']["value"] == 2

    def test_feeding_is_deferred_until_stats_or_flush(self):
        t = tracer()
        t.registry = MetricsRegistry()
        with t.trace("http.request"):
            pass
        assert t.registry.export()["histograms"] == {}  # still buffered
        t.stats()  # any scrape-path read drains the buffer
        hists = t.registry.export()["histograms"]
        assert hists['carcs_span_seconds{span="http.request"}']["count"] == 1

    def test_exemplars_point_at_retained_traces_only(self):
        t = tracer(mode=MODE_SAMPLED, sample_every=10**6)
        with t.trace("kept") as kept:  # first trace: head-sampled
            kept_id = kept.trace_id  # live handles don't outlive the block
            with span("cache.get"):
                pass
        with t.trace("dropped"):
            with span("search.query"):
                pass
        exemplars = t.exemplars()
        assert exemplars["kept"] == kept_id
        assert exemplars["cache.get"] == kept_id
        assert "search.query" not in exemplars
        assert t.store.get(exemplars["cache.get"]) is not None

    def test_reset_clears_store_counters_and_exemplars(self):
        t = tracer()
        with t.trace("root"):
            pass
        t.reset()
        assert len(t.store) == 0
        assert t.exemplars() == {}
        assert t.stats()["started"] == 0


class TestRenderText:
    def test_tree_layout_attributes_and_error_lines(self):
        t = tracer(slow_ms=0.0)
        with t.trace("GET /api/v1/search", status=200) as root:
            with span("search.query", mode="bm25"):
                with span("db.changes_since") as inner:
                    inner.mark_error("journal outrun")
        record = t.store.get(root.trace_id)
        text = render_text(record)
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {root.trace_id}")
        assert "spans=3" in lines[0]
        assert "SLOW" in lines[0]
        assert lines[1].startswith("- GET /api/v1/search")
        assert "[status=200]" in lines[1]
        assert lines[2].startswith("  - search.query")
        assert "[mode=bm25]" in lines[2]
        assert lines[3].startswith("    - db.changes_since !")
        assert lines[4].strip() == "error: journal outrun"

    def test_record_summary_shape(self):
        t = tracer()
        with t.trace("root") as root:
            with span("child"):
                pass
        record = t.store.get(root.trace_id)
        assert isinstance(record, TraceRecord)
        summary = record.summary()
        assert summary["spans"] == 2
        assert summary["name"] == "root"
        assert summary["duration_ms"] >= 0.0
        assert record.as_dict()["root"]["children"][0]["name"] == "child"
