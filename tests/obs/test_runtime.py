"""Process runtime gauges: build info, uptime, RSS, fds, threads."""

from __future__ import annotations

import sys

from repro import __version__
from repro.obs import MetricsRegistry, collect_runtime_metrics
from repro.obs.runtime import open_fds, rss_bytes


def test_build_info_carries_version_labels():
    registry = MetricsRegistry()
    collect_runtime_metrics(registry)
    gauges = registry.export()["gauges"]
    python = ".".join(str(part) for part in sys.version_info[:3])
    key = f'carcs_build_info{{python="{python}",version="{__version__}"}}'
    assert gauges[key]["value"] == 1


def test_uptime_and_threads_are_positive():
    registry = MetricsRegistry()
    collect_runtime_metrics(registry)
    gauges = registry.export()["gauges"]
    assert gauges["carcs_process_uptime_seconds"]["value"] > 0
    assert gauges["carcs_process_threads"]["value"] >= 1


def test_rss_and_fds_export_when_available():
    # Both helpers answer -1 only on platforms without /proc or the
    # resource module; Linux CI always has them.
    rss = rss_bytes()
    fds = open_fds()
    registry = MetricsRegistry()
    collect_runtime_metrics(registry)
    gauges = registry.export()["gauges"]
    if rss >= 0:
        assert gauges["carcs_process_resident_memory_bytes"]["value"] > 0
    else:
        assert "carcs_process_resident_memory_bytes" not in gauges
    if fds >= 0:
        assert gauges["carcs_process_open_fds"]["value"] > 0
    else:
        assert "carcs_process_open_fds" not in gauges


def test_repeated_collection_updates_in_place():
    registry = MetricsRegistry()
    collect_runtime_metrics(registry)
    first = registry.export()["gauges"]["carcs_process_uptime_seconds"]["value"]
    collect_runtime_metrics(registry)
    second = registry.export()["gauges"]["carcs_process_uptime_seconds"]["value"]
    assert second >= first
    # Still one series per gauge, not an accumulation.
    names = [
        name for name in registry.export()["gauges"]
        if name.startswith("carcs_process_uptime")
    ]
    assert names == ["carcs_process_uptime_seconds"]
