"""The carcs command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def fast_repo(monkeypatch):
    """Share one seeded repository across CLI invocations in this module
    (seeding takes ~2s; the CLI reseeds per call by default)."""
    from repro.corpus.seed import seed_all

    cached = seed_all()
    monkeypatch.setattr("repro.cli.seed_all", lambda: cached)
    return cached


class TestStats:
    def test_stats_lists_collections_and_ontologies(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "itcs3145" in out
        assert "ontology CS13" in out


class TestCoverage:
    def test_area_table(self, capsys):
        assert main(
            ["coverage", "--collection", "itcs3145", "--ontology", "PDC12"]
        ) == 0
        out = capsys.readouterr().out
        assert "Programming" in out and "16" in out

    def test_tree_rendering(self, capsys):
        assert main(
            ["coverage", "--collection", "peachy", "--ontology", "PDC12",
             "--tree", "--depth", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "PDC12  (11 materials)" in out


class TestSimilarity:
    def test_figure3_numbers(self, capsys):
        assert main(["similarity", "--threshold", "2"]) == 0
        out = capsys.readouterr().out
        assert "edges=24" in out
        assert "isolated nifty: 59" in out


class TestSearch:
    def test_hit(self, capsys):
        assert main(["search", "hurricane storm", "--limit", "3"]) == 0
        assert "Hurricane Tracker" in capsys.readouterr().out

    def test_miss_returns_nonzero(self, capsys):
        assert main(["search", "xylophone zebra", "--limit", "3"]) == 1

    def test_subtree_filter(self, capsys):
        assert main(
            ["search", "", "--under", "PDC12/PROG", "--collection", "peachy"]
        ) == 0
        out = capsys.readouterr().out
        assert "peachy" in out and "nifty" not in out


class TestGaps:
    def test_gap_report(self, capsys):
        assert main(["gaps"]) == 0
        out = capsys.readouterr().out
        assert "Alignment of 'peachy' with 'nifty'" in out


class TestRecommend:
    def test_suggestions(self, capsys):
        assert main(
            ["recommend", "parallel loops over an image with OpenMP pragmas"]
        ) == 0
        out = capsys.readouterr().out
        assert "PDC12/" in out or "CS13/" in out


class TestPlan:
    def test_core_plan(self, capsys):
        assert main(["plan", "--ontology", "PDC12", "--tier", "core",
                     "--max-materials", "4"]) == 0
        out = capsys.readouterr().out
        assert "Course plan over PDC12" in out


class TestDiff:
    def test_edition_diff(self, capsys):
        assert main(["diff", "PDC12", "PDC19"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out


class TestProfile:
    def test_profile_all_collections(self, capsys):
        assert main(["profile", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "nifty: 65 materials" in out
        assert "entries/material" in out
        assert "hottest entries:" in out

    def test_profile_specific_collection(self, capsys):
        assert main(["profile", "--collections", "itcs3145"]) == 0
        out = capsys.readouterr().out
        assert "itcs3145: 21 materials" in out
        assert "nifty:" not in out


class TestReport:
    def test_html_report_written(self, capsys, tmp_path):
        path = tmp_path / "report.html"
        assert main(["report", str(path)]) == 0
        assert path.read_text().startswith("<!DOCTYPE html>")


class TestLint:
    def test_lint_finds_the_known_issue(self, capsys):
        assert main(["lint"]) == 1
        out = capsys.readouterr().out
        assert "cross-ontology" in out
        assert "Rectangle Method" in out

    def test_lint_clean_collection(self, capsys):
        assert main(["lint", "--collection", "nifty"]) == 0
        assert "clean" in capsys.readouterr().out


class TestSnapshot:
    def test_export_then_operate_on_snapshot(self, capsys, tmp_path):
        path = tmp_path / "snap.json"
        assert main(["export", str(path)]) == 0
        assert path.exists()
        assert main(["--snapshot", str(path), "stats"]) == 0
        assert "materials: 97" in capsys.readouterr().out
