"""Cross-module property-based tests on randomly generated corpora.

These exercise the analysis stack end-to-end over synthetic data, so the
invariants hold for *any* repository, not just the paper's seeded one.
PDC12 (116 entries) keeps the generator fast; the invariants themselves
are ontology-agnostic.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.coverage import compute_coverage
from repro.core.persist import export_repository, import_repository
from repro.core.repository import Repository
from repro.core.similarity import incidence, shared_item_matrix, similarity_graph
from repro.corpus.generator import GeneratorConfig, seed_synthetic
from repro.corpus.seed import seed_ontologies

SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_repo(n_materials: int, seed: int) -> tuple[Repository, list[int]]:
    repo = Repository()
    seed_ontologies(repo)
    ids = seed_synthetic(
        repo, "PDC12",
        GeneratorConfig(
            n_materials=n_materials, seed=seed, collection="x",
            min_items=1, max_items=6,
        ),
    )
    return repo, ids


corpus_params = st.tuples(
    st.integers(min_value=2, max_value=25),   # corpus size
    st.integers(min_value=0, max_value=10_000),  # generator seed
)


@SETTINGS
@given(corpus_params)
def test_coverage_rollup_dominates_direct(params):
    """A parent's rollup count is >= each child's, and every direct count
    is <= its own rollup count."""
    repo, _ = make_repo(*params)
    onto = repo.ontology("PDC12")
    cov = compute_coverage(repo, "PDC12", collection="x")
    for key, direct in cov.direct_counts.items():
        assert cov.rollup_counts[key] >= direct
    for node in onto.nodes():
        for child_key in node.children:
            child = cov.rollup_counts.get(child_key, 0)
            parent = cov.rollup_counts.get(node.key, 0)
            assert parent >= child


@SETTINGS
@given(corpus_params)
def test_area_counts_bounded_by_materials(params):
    repo, ids = make_repo(*params)
    onto = repo.ontology("PDC12")
    cov = compute_coverage(repo, "PDC12", collection="x")
    for area, count in cov.area_ranking(onto):
        assert 0 <= count <= len(ids)
    assert len(cov.covered_material_ids) <= len(ids)


@SETTINGS
@given(corpus_params)
def test_shared_item_matrix_properties(params):
    """Self shared-item matrix: symmetric, diagonal = set sizes, and every
    off-diagonal entry <= min of the two diagonals."""
    import numpy as np

    repo, ids = make_repo(*params)
    space = incidence(repo, ids)
    shared = shared_item_matrix(space)
    assert np.allclose(shared, shared.T)
    sizes = space.matrix.sum(axis=1)
    assert np.allclose(np.diag(shared), sizes)
    mins = np.minimum(sizes[:, None], sizes[None, :])
    assert (shared <= mins + 1e-9).all()


@SETTINGS
@given(corpus_params, st.integers(min_value=1, max_value=4))
def test_similarity_graph_edges_match_rule(params, threshold):
    """Every edge shares >= threshold items; every non-edge shares fewer."""
    repo, ids = make_repo(*params)
    half = max(1, len(ids) // 2)
    left, right = ids[:half], ids[half:]
    if not right:
        return
    graph = similarity_graph(repo, left, right, threshold=threshold)
    keysets = {
        mid: repo.classification_of(mid).keys("PDC12") for mid in ids
    }
    for lid in left:
        for rid in right:
            shared = len(keysets[lid] & keysets[rid])
            assert graph.has_edge(lid, rid) == (shared >= threshold)


@SETTINGS
@given(corpus_params)
def test_persistence_preserves_all_analyses(params):
    """Coverage before export == coverage after import, key for key."""
    repo, _ = make_repo(*params)
    restored = import_repository(export_repository(repo))
    a = compute_coverage(repo, "PDC12", collection="x")
    b = compute_coverage(restored, "PDC12", collection="x")
    assert a.direct_counts == b.direct_counts
    assert a.rollup_counts == b.rollup_counts


@SETTINGS
@given(corpus_params, st.integers(min_value=1, max_value=8))
def test_planner_coverage_monotone_in_budget(params, budget):
    """Allowing more materials never reduces plan coverage."""
    from repro.analysis import core_targets, plan_course
    from repro.core.ontology import Tier

    repo, _ = make_repo(*params)
    onto = repo.ontology("PDC12")
    targets = core_targets(onto, [Tier.CORE])
    small = plan_course(repo, "PDC12", targets, max_materials=budget)
    large = plan_course(repo, "PDC12", targets, max_materials=budget + 2)
    assert large.coverage_ratio >= small.coverage_ratio
    assert len(small.picks) <= budget


@SETTINGS
@given(corpus_params)
def test_migration_conserves_material_classification(params):
    """After PDC12 -> PDC19 migration, every material keeps at least as
    many classification entries (moves 1:1, splits 1:2, drops 0)."""
    from repro.core.migrate import migrate_classifications
    from repro.ontologies import load, pdc2019

    repo, ids = make_repo(*params)
    before = {mid: len(repo.classification_of(mid)) for mid in ids}
    report = migrate_classifications(
        repo, "PDC12", load("PDC19"), pdc2019.translate_key
    )
    assert not report.dropped_links
    for mid in ids:
        assert len(repo.classification_of(mid)) >= before[mid]
