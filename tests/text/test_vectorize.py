"""Vocabulary and TF-IDF pipeline."""

import numpy as np
import pytest

from repro.text import (
    TfidfVectorizer,
    Vocabulary,
    count_matrix,
    l2_normalize,
    preprocess,
    tfidf_weights,
)


class TestPreprocess:
    def test_removes_stopwords_and_stems(self):
        tokens = preprocess("The students are implementing parallel loops")
        assert "the" not in tokens
        assert "students" not in tokens  # domain stopword
        assert "parallel" in tokens
        assert "loop" in tokens  # stemmed

    def test_stemming_can_be_disabled(self):
        tokens = preprocess("parallel loops", stemming=False)
        assert "loops" in tokens


class TestVocabulary:
    def test_build_sorted_unique(self):
        vocab = Vocabulary.build([["b", "a"], ["a", "c"]])
        assert vocab.tokens() == ["a", "b", "c"]
        assert len(vocab) == 3
        assert "a" in vocab and "z" not in vocab

    def test_min_df_filters_hapaxes(self):
        vocab = Vocabulary.build([["a", "b"], ["a", "c"]], min_df=2)
        assert vocab.tokens() == ["a"]

    def test_max_df_ratio_filters_ubiquitous(self):
        vocab = Vocabulary.build(
            [["a", "b"], ["a", "c"], ["a", "d"]], max_df_ratio=0.67
        )
        assert "a" not in vocab

    def test_df_counts_presence_not_frequency(self):
        vocab = Vocabulary.build([["a", "a", "a"], ["b"]], min_df=2)
        assert "a" not in vocab


class TestCountMatrix:
    def test_counts(self):
        vocab = Vocabulary.build([["a", "b"], ["b"]])
        counts = count_matrix([["a", "b", "b"], ["b"]], vocab)
        assert counts.shape == (2, 2)
        assert counts[0, vocab.index["a"]] == 1
        assert counts[0, vocab.index["b"]] == 2
        assert counts[1, vocab.index["a"]] == 0

    def test_out_of_vocabulary_ignored(self):
        vocab = Vocabulary.build([["a"]])
        counts = count_matrix([["a", "zzz"]], vocab)
        assert counts.sum() == 1


class TestTfidfWeights:
    def test_rarer_terms_weigh_more(self):
        vocab = Vocabulary.build([["a", "b"], ["a"], ["a"]])
        counts = count_matrix([["a", "b"], ["a"], ["a"]], vocab)
        idf = tfidf_weights(counts)
        assert idf[vocab.index["b"]] > idf[vocab.index["a"]]

    def test_smooth_keeps_ubiquitous_terms_positive(self):
        vocab = Vocabulary.build([["a"], ["a"]])
        counts = count_matrix([["a"], ["a"]], vocab)
        idf = tfidf_weights(counts, smooth=True)
        assert idf[0] >= 1.0


class TestL2Normalize:
    def test_rows_have_unit_norm(self):
        m = np.array([[3.0, 4.0], [1.0, 0.0]])
        normalized = l2_normalize(m)
        assert np.allclose(np.linalg.norm(normalized, axis=1), 1.0)

    def test_zero_rows_stay_zero(self):
        m = np.array([[0.0, 0.0]])
        assert np.allclose(l2_normalize(m), 0.0)

    def test_input_not_mutated(self):
        m = np.array([[3.0, 4.0]])
        l2_normalize(m)
        assert np.allclose(m, [[3.0, 4.0]])


class TestTfidfVectorizer:
    CORPUS = [
        "parallel loops with OpenMP pragmas",
        "message passing with MPI ranks",
        "sorting algorithms with quicksort",
    ]

    def test_fit_transform_shape(self):
        X = TfidfVectorizer().fit_transform(self.CORPUS)
        assert X.shape[0] == 3
        assert np.allclose(np.linalg.norm(X, axis=1), 1.0)

    def test_transform_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["x"])

    def test_query_similarity_ranks_correct_document(self):
        v = TfidfVectorizer()
        X = v.fit_transform(self.CORPUS)
        q = v.transform(["OpenMP parallel loop"])
        sims = (X @ q.T).ravel()
        assert int(np.argmax(sims)) == 0

    def test_unseen_terms_give_zero_vector(self):
        v = TfidfVectorizer()
        v.fit(self.CORPUS)
        q = v.transform(["zebra xylophone"])
        assert np.allclose(q, 0.0)

    def test_sublinear_tf_dampens_repeats(self):
        v_lin = TfidfVectorizer()
        v_sub = TfidfVectorizer(sublinear_tf=True)
        docs = ["loop loop loop loop sort", "loop sort"]
        x_lin = v_lin.fit_transform(docs)
        x_sub = v_sub.fit_transform(docs)
        # relative weight of the repeated term is lower under sublinear tf
        vocab = v_lin.vocabulary.index
        assert (
            x_sub[0, vocab[next(t for t in vocab if t.startswith("loop"))]]
            < x_lin[0, vocab[next(t for t in vocab if t.startswith("loop"))]]
        )
