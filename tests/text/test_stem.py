"""Porter stemmer against reference behaviour."""

import pytest

from repro.text import stem, stem_tokens

# (input, expected) pairs from the original Porter paper and common
# reference implementations.
REFERENCE = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", REFERENCE)
def test_reference_pairs(word, expected):
    assert stem(word) == expected


class TestDomainConflation:
    """The property the pipeline actually needs: morphological variants of
    curriculum vocabulary map to one stem."""

    @pytest.mark.parametrize("variants", [
        ("scheduling", "scheduled", "schedules"),
        ("parallelize", "parallelized", "parallelizing"),
        ("synchronization", "synchronizing", "synchronized"),
        ("iteration", "iterating", "iterated"),
        ("classification", "classifications"),
    ])
    def test_variants_conflate(self, variants):
        stems = {stem(v) for v in variants}
        assert len(stems) == 1, stems


class TestEdgeCases:
    def test_short_words_untouched(self):
        assert stem("as") == "as"
        assert stem("be") == "be"
        assert stem("a") == "a"

    def test_idempotent_on_many_words(self):
        for word in ("running", "flies", "classification", "parallel"):
            once = stem(word)
            assert stem(once) == once or len(stem(once)) <= len(once)


class TestStemTokens:
    def test_stems_each_token(self):
        assert stem_tokens(["running", "cats"]) == ["run", "cat"]

    def test_hyphenated_compounds_stemmed_per_part(self):
        assert stem_tokens(["divide-and-conquer"]) == ["divid-and-conquer"]
