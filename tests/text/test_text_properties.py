"""Property-based tests on the text substrate (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    TfidfVectorizer,
    cosine_matrix,
    stem,
    tokenize,
)

words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=10,
)
docs = st.lists(words, min_size=1, max_size=12).map(" ".join)


@given(st.text(max_size=200))
def test_tokenize_never_crashes_and_tokens_nonempty(text):
    for token in tokenize(text):
        assert token
        assert token == token.lower()


@given(words)
def test_stem_returns_nonempty_prefix_ish_string(word):
    out = stem(word)
    assert out
    assert len(out) <= len(word) + 1  # step 1b can append an 'e'


@given(words)
def test_stem_is_deterministic(word):
    assert stem(word) == stem(word)


@settings(max_examples=30)
@given(st.lists(docs, min_size=2, max_size=8))
def test_tfidf_rows_are_unit_or_zero(corpus):
    X = TfidfVectorizer().fit_transform(corpus)
    norms = np.linalg.norm(X, axis=1)
    for n in norms:
        assert abs(n - 1.0) < 1e-9 or n == 0.0


@settings(max_examples=30)
@given(st.lists(docs, min_size=2, max_size=6))
def test_cosine_self_similarity_bounds(corpus):
    X = TfidfVectorizer().fit_transform(corpus)
    sims = cosine_matrix(X)
    assert sims.shape == (len(corpus), len(corpus))
    assert np.all(sims <= 1.0 + 1e-12)
    assert np.all(sims >= -1.0 - 1e-12)
    assert np.allclose(sims, sims.T)


@settings(max_examples=30)
@given(st.lists(docs, min_size=2, max_size=6))
def test_identical_documents_have_identical_vectors(corpus):
    doubled = corpus + [corpus[0]]
    X = TfidfVectorizer().fit_transform(doubled)
    assert np.allclose(X[0], X[-1])
