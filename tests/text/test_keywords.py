"""Keyword extraction."""

import pytest

from repro.text.keywords import KeywordExtractor, suggest_tags

CORPUS = [
    "Sort an array of integers with quicksort and measure comparisons",
    "Render the Mandelbrot fractal pixel by pixel and zoom into it",
    "Train a spam classifier with naive Bayes on labeled emails",
    "Simulate a forest fire spreading through a grid of trees",
    "Parallelize matrix multiplication with OpenMP threads",
]


class TestKeywordExtractor:
    @pytest.fixture()
    def extractor(self):
        return KeywordExtractor(max_keywords=5).fit(CORPUS)

    def test_distinctive_terms_rank_top(self, extractor):
        keywords = extractor.extract(CORPUS[1])
        terms = [k.surface for k in keywords]
        assert any("mandelbrot" in t for t in terms)
        assert any("fractal" in t or "zoom" in t for t in terms)

    def test_scores_sorted_descending(self, extractor):
        keywords = extractor.extract(CORPUS[0])
        scores = [k.score for k in keywords]
        assert scores == sorted(scores, reverse=True)
        assert all(s > 0 for s in scores)

    def test_max_keywords_respected(self):
        extractor = KeywordExtractor(max_keywords=2).fit(CORPUS)
        assert len(extractor.extract(CORPUS[2])) <= 2

    def test_surface_forms_come_from_text(self, extractor):
        keywords = extractor.extract(CORPUS[3])
        text_lower = CORPUS[3].lower()
        for kw in keywords:
            assert kw.surface.lower() in text_lower

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            KeywordExtractor().extract("anything")

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            KeywordExtractor().fit([])

    def test_stopwords_never_surface(self, extractor):
        for doc in CORPUS:
            for kw in extractor.extract(doc):
                assert kw.surface not in ("the", "with", "and", "of", "a")


class TestSuggestTags:
    def test_tags_for_new_material(self):
        tags = suggest_tags(
            CORPUS,
            "Estimate pi by throwing random darts at a unit square",
            top=4,
        )
        assert tags
        assert any("dart" in t or "pi" in t or "random" in t for t in tags)

    def test_tags_are_lowercase(self):
        tags = suggest_tags(CORPUS, "Mandelbrot Zoom Movie")
        assert all(t == t.lower() for t in tags)
