"""Tokenizer behaviour."""

from repro.text import ngrams, sentence_split, tokenize


class TestTokenize:
    def test_basic_split_and_lowercase(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_keeps_internal_hyphens_and_apostrophes(self):
        assert tokenize("Amdahl's divide-and-conquer") == [
            "amdahl's", "divide-and-conquer"
        ]

    def test_strips_punctuation(self):
        assert tokenize("loops, (MPI)! & pragmas?") == ["loops", "mpi", "pragmas"]

    def test_numbers_survive(self):
        assert tokenize("CS13 and PDC-12") == ["cs13", "and", "pdc-12"]

    def test_no_lowercase_option(self):
        assert tokenize("OpenMP", lowercase=False) == ["OpenMP"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_leading_trailing_hyphen_not_merged(self):
        assert tokenize("-edge case-") == ["edge", "case"]


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_longer_than_input(self):
        assert list(ngrams(["a"], 3)) == []

    def test_unigrams(self):
        assert list(ngrams(["a", "b"], 1)) == [("a",), ("b",)]

    def test_invalid_n(self):
        import pytest
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))


class TestSentenceSplit:
    def test_splits_on_terminators(self):
        parts = sentence_split("First one. Second one! Third?")
        assert parts == ["First one.", "Second one!", "Third?"]

    def test_single_sentence(self):
        assert sentence_split("Just one") == ["Just one"]

    def test_empty(self):
        assert sentence_split("   ") == []
