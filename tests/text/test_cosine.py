"""Cosine kernels and top-k neighbour extraction."""

import numpy as np
import pytest

from repro.text import cosine, cosine_matrix, top_k_neighbors


class TestCosine:
    def test_identical_vectors(self):
        assert cosine([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_opposite_vectors(self):
        assert cosine([1, 0], [-1, 0]) == pytest.approx(-1.0)

    def test_zero_vector_gives_zero(self):
        assert cosine([0, 0], [1, 1]) == 0.0

    def test_scale_invariance(self):
        assert cosine([1, 2], [2, 4]) == pytest.approx(1.0)


class TestCosineMatrix:
    def test_self_similarity_diagonal(self):
        m = np.array([[1.0, 0.0], [0.0, 2.0], [1.0, 1.0]])
        sims = cosine_matrix(m)
        assert np.allclose(np.diag(sims), 1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        m = rng.random((5, 4))
        sims = cosine_matrix(m)
        assert np.allclose(sims, sims.T)

    def test_cross_matrix_shape(self):
        a = np.ones((3, 4))
        b = np.ones((2, 4))
        assert cosine_matrix(a, b).shape == (3, 2)

    def test_values_clipped_to_unit_interval(self):
        rng = np.random.default_rng(1)
        m = rng.random((10, 6))
        sims = cosine_matrix(m)
        assert sims.max() <= 1.0 and sims.min() >= -1.0

    def test_agrees_with_scalar_cosine(self):
        rng = np.random.default_rng(2)
        a = rng.random((3, 5))
        b = rng.random((2, 5))
        sims = cosine_matrix(a, b)
        for i in range(3):
            for j in range(2):
                assert sims[i, j] == pytest.approx(cosine(a[i], b[j]))

    def test_zero_rows_similarity_zero(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        sims = cosine_matrix(a)
        assert sims[0, 1] == 0.0


class TestTopK:
    def test_returns_k_sorted_neighbors(self):
        sims = np.array([[0.1, 0.9, 0.5]])
        out = top_k_neighbors(sims, 2)
        assert [i for i, _ in out[0]] == [1, 2]
        assert out[0][0][1] == pytest.approx(0.9)

    def test_exclude_self_skips_diagonal(self):
        sims = np.array([[1.0, 0.3], [0.3, 1.0]])
        out = top_k_neighbors(sims, 1, exclude_self=True)
        assert out[0][0][0] == 1
        assert out[1][0][0] == 0

    def test_exclude_self_requires_square(self):
        with pytest.raises(ValueError):
            top_k_neighbors(np.ones((2, 3)), 1, exclude_self=True)

    def test_k_larger_than_columns_clamped(self):
        sims = np.array([[0.5, 0.6]])
        out = top_k_neighbors(sims, 10)
        assert len(out[0]) == 2

    def test_zero_k_effective(self):
        sims = np.ones((1, 1))
        out = top_k_neighbors(sims, 1, exclude_self=True)
        assert out == [[]]
