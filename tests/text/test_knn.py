"""Multi-label kNN classifier."""

import numpy as np
import pytest

from repro.text import KnnClassifier


@pytest.fixture()
def fitted():
    # Three clear regions in 2D feature space.
    X = np.array([
        [1.0, 0.0], [0.9, 0.1],      # label "a"
        [0.0, 1.0], [0.1, 0.9],      # label "b"
        [0.7, 0.7],                  # labels "a" and "b"
    ])
    labels = [["a"], ["a"], ["b"], ["b"], ["a", "b"]]
    return KnnClassifier(k=3, threshold=0.2).fit(X, labels)


class TestFit:
    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            KnnClassifier().fit(np.ones((2, 2)), [["a"]])

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            KnnClassifier().fit(np.ones((0, 2)), [])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            KnnClassifier(k=0)
        with pytest.raises(ValueError):
            KnnClassifier(threshold=1.5)

    def test_suggest_before_fit(self):
        with pytest.raises(RuntimeError):
            KnnClassifier().suggest(np.ones((1, 2)))


class TestSuggest:
    def test_nearest_region_wins(self, fitted):
        out = fitted.suggest(np.array([[1.0, 0.05]]))[0]
        assert out[0].label == "a"

    def test_multilabel_region(self, fitted):
        labels = fitted.predict_labels(np.array([[0.7, 0.7]]))[0]
        assert labels == frozenset({"a", "b"})

    def test_scores_normalized_and_sorted(self, fitted):
        out = fitted.suggest(np.array([[0.5, 0.5]]))[0]
        scores = [s.score for s in out]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_threshold_filters_weak_votes(self):
        X = np.eye(4)
        labels = [["a"], ["b"], ["c"], ["d"]]
        strict = KnnClassifier(k=4, threshold=0.9).fit(X, labels)
        out = strict.suggest(np.array([[1.0, 0.0, 0.0, 0.0]]))[0]
        assert [s.label for s in out] == ["a"]

    def test_supporters_recorded(self, fitted):
        out = fitted.suggest(np.array([[1.0, 0.0]]))[0]
        a = next(s for s in out if s.label == "a")
        assert set(a.supporters) <= {0, 1, 4}

    def test_zero_query_yields_nothing(self, fitted):
        out = fitted.suggest(np.array([[0.0, 0.0]]))[0]
        assert out == []

    def test_batch_queries(self, fitted):
        out = fitted.suggest(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert out[0][0].label == "a"
        assert out[1][0].label == "b"
