"""Multinomial naive Bayes classifier."""

import numpy as np
import pytest

from repro.text import NaiveBayesClassifier


@pytest.fixture()
def fitted():
    # vocabulary: [loop, thread, sort, tree]
    counts = np.array([
        [3, 2, 0, 0],   # parallel doc
        [2, 3, 0, 0],   # parallel doc
        [0, 0, 3, 2],   # algorithms doc
        [0, 0, 2, 3],   # algorithms doc
        [1, 1, 1, 1],   # both
    ], dtype=float)
    labels = [["par"], ["par"], ["alg"], ["alg"], ["par", "alg"]]
    return NaiveBayesClassifier(min_label_count=2).fit(counts, labels)


class TestFit:
    def test_labels_sorted(self, fitted):
        assert fitted.labels_ == ["alg", "par"]

    def test_min_label_count_excludes_rare(self):
        counts = np.ones((3, 2))
        labels = [["common"], ["common"], ["rare"]]
        nb = NaiveBayesClassifier(min_label_count=2).fit(counts, labels)
        assert nb.labels_ == ["common"]

    def test_no_eligible_labels_raises(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier(min_label_count=5).fit(
                np.ones((2, 2)), [["a"], ["b"]]
            )

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier().fit(np.ones((2, 2)), [["a"]])

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            NaiveBayesClassifier(alpha=0)


class TestPredict:
    def test_clear_parallel_doc(self, fitted):
        out = fitted.suggest(np.array([[4, 3, 0, 0]], dtype=float))[0]
        assert out and out[0].label == "par"

    def test_clear_algorithms_doc(self, fitted):
        out = fitted.suggest(np.array([[0, 0, 4, 3]], dtype=float))[0]
        assert out and out[0].label == "alg"

    def test_log_odds_shape(self, fitted):
        odds = fitted.log_odds(np.ones((3, 4)))
        assert odds.shape == (3, 2)

    def test_suggest_only_positive_odds(self, fitted):
        out = fitted.suggest(np.array([[0, 0, 4, 3]], dtype=float))[0]
        assert all(s.log_odds > 0 for s in out)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            NaiveBayesClassifier().log_odds(np.ones((1, 2)))

    def test_predict_labels_multilabel(self, fitted):
        labels = fitted.predict_labels(np.array([[2, 2, 2, 2]], dtype=float))[0]
        assert labels <= {"par", "alg"}

    def test_top_limits_suggestions(self, fitted):
        out = fitted.suggest(np.array([[1, 1, 1, 1]], dtype=float), top=1)[0]
        assert len(out) <= 1

    def test_smoothing_handles_unseen_terms(self):
        counts = np.array([[5, 0], [0, 5]], dtype=float)
        nb = NaiveBayesClassifier(min_label_count=1).fit(
            counts, [["x"], ["y"]]
        )
        # a document with a term never seen in class x must not produce NaN
        odds = nb.log_odds(np.array([[1, 1]], dtype=float))
        assert np.isfinite(odds).all()
