"""Stopword list behaviour."""

from repro.text import STOPWORDS, is_stopword, remove_stopwords
from repro.text.stopwords import STOPWORDS as _direct


class TestStopwords:
    def test_common_english_words_present(self):
        for word in ("the", "and", "of", "with", "is", "are"):
            assert is_stopword(word)

    def test_domain_words_present(self):
        # curriculum-domain noise words carry no signal across materials
        for word in ("students", "assignment", "course", "class"):
            assert is_stopword(word)

    def test_technical_vocabulary_not_stopped(self):
        for word in ("parallel", "thread", "array", "mpi", "sorting"):
            assert not is_stopword(word)

    def test_remove_stopwords_preserves_order(self):
        tokens = ["the", "parallel", "and", "distributed", "computing"]
        assert remove_stopwords(tokens) == [
            "parallel", "distributed", "computing"
        ]

    def test_list_is_frozen(self):
        assert isinstance(STOPWORDS, frozenset)
        assert STOPWORDS is _direct

    def test_all_entries_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)

    def test_case_sensitivity_contract(self):
        # callers lowercase before lookup; uppercase is not a stopword
        assert not is_stopword("The")
