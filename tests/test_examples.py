"""Integration smoke tests: every example script runs cleanly.

Each example is a deliverable in its own right (DESIGN.md); these run
them as subprocesses (fresh interpreter, public API only) and assert
both exit status and a distinctive line of expected output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: script name -> substring its stdout must contain
EXPECTED = {
    "quickstart.py": "isolated Nifty : 59 / 65",
    "enter_material.py": "Parallel Wave Equation — 3 classifications",
    "coverage_report.py": "Coverage of 'itcs3145' against CS13",
    "gap_analysis.py": "unless the PDC community develops",
    "find_pdc_replacement.py": "Storm of High-Energy Particles",
    "crowdsourced_curation.py": "submission status: approved",
    "curriculum_revision.py": "migrated 1:1",
    "build_pdc_course.py": "Plan C",
    "size_the_editor_pool.py": "How many editors keep the queue stable?",
    "classify_with_widget.py": "Editor's lint pass:",
    "render_figures.py": "figure3_similarity.svg",
}


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED[script] in result.stdout


def test_every_example_is_covered():
    """A new example script must be added to EXPECTED (or this fails)."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(EXPECTED)
