"""End-to-end replication across real ``carcs serve`` processes.

Spawns an actual primary, replica and router as subprocesses talking
over loopback TCP/HTTP — the deployment topology from the README, not
an in-process simulation.  Marked ``multiproc``: skipped unless
``CARCS_MULTIPROC=1`` (CI sets it; see ``scripts/ci.sh``) because each
test boots three interpreters.
"""

import json
import os
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

pytestmark = pytest.mark.multiproc

BOOT_TIMEOUT = 30.0
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(*argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )


def _http(method: str, url: str, body=None, headers=None, timeout=5.0):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"content-type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        payload = resp.read()
        return resp.status, dict(resp.headers), (
            json.loads(payload) if payload else None
        )


def _wait_http(url: str, deadline: float) -> None:
    last = None
    while time.time() < deadline:
        try:
            status, _, _ = _http("GET", url)
            if status == 200:
                return
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            last = exc
        time.sleep(0.1)
    raise TimeoutError(f"{url} never came up: {last}")


def _drain(proc: subprocess.Popen) -> str:
    try:
        out, _ = proc.communicate(timeout=5)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
    return out.decode(errors="replace") if out else ""


@pytest.fixture()
def topology():
    """primary + replica + router ``carcs serve`` processes."""
    primary_port, repl_port = _free_port(), _free_port()
    replica_port, router_port = _free_port(), _free_port()
    primary_url = f"http://127.0.0.1:{primary_port}"
    replica_url = f"http://127.0.0.1:{replica_port}"
    router_url = f"http://127.0.0.1:{router_port}"
    procs = {}
    deadline = time.time() + BOOT_TIMEOUT
    try:
        procs["primary"] = _spawn(
            "serve", "--primary", "--host", "127.0.0.1",
            "--port", str(primary_port), "--repl-port", str(repl_port),
        )
        _wait_http(f"{primary_url}/api/v1/healthz", deadline)
        procs["replica"] = _spawn(
            "serve", "--replica", f"127.0.0.1:{repl_port}",
            "--host", "127.0.0.1", "--port", str(replica_port),
            "--primary-url", primary_url,
        )
        _wait_http(f"{replica_url}/api/v1/healthz", deadline)
        procs["router"] = _spawn(
            "serve", "--router", "--host", "127.0.0.1",
            "--port", str(router_port),
            "--primary-url", primary_url, "--replica-url", replica_url,
        )
        _wait_http(f"{router_url}/api/v1/fleet", deadline)
        yield {
            "primary": primary_url, "replica": replica_url,
            "router": router_url, "procs": procs,
        }
    finally:
        for proc in procs.values():
            proc.terminate()
        for name, proc in procs.items():
            output = _drain(proc)
            if proc.returncode not in (0, -15):
                sys.stderr.write(f"--- {name} exited {proc.returncode}\n")
                sys.stderr.write(output + "\n")


class TestRealTopology:
    def test_write_through_router_read_your_writes(self, topology):
        router = topology["router"]
        session = {"x-carcs-session": "e2e"}
        status, headers, created = _http(
            "POST", f"{router}/api/v1/assignments",
            body={"title": "E2E across processes"}, headers=session,
        )
        assert status == 201
        assert headers["x-carcs-backend"] == "primary"
        mid = created["id"]
        # Immediately read back through the router with the same
        # session: RYW must hold whichever node answers.
        status, headers, fetched = _http(
            "GET", f"{router}/api/v1/assignments/{mid}", headers=session,
        )
        assert status == 200
        assert fetched["id"] == mid
        assert fetched["title"] == "E2E across processes"

    def test_replica_converges_and_reports_its_stream(self, topology):
        status, _, created = _http(
            "POST", f"{topology['primary']}/api/v1/assignments",
            body={"title": "converge me"},
        )
        assert status == 201
        deadline = time.time() + BOOT_TIMEOUT
        fetched = None
        while time.time() < deadline:
            try:
                code, _, fetched = _http(
                    "GET",
                    f"{topology['replica']}/api/v1/assignments/{created['id']}",
                )
                if code == 200:
                    break
            except urllib.error.HTTPError:
                pass
            time.sleep(0.1)
        assert fetched and fetched["title"] == "converge me"
        _, _, repl = _http("GET", f"{topology['replica']}/api/v1/replication")
        assert repl["role"] == "replica"
        assert repl["connected"] is True
        assert repl["snapshots_applied"] >= 1
        _, _, primary = _http(
            "GET", f"{topology['primary']}/api/v1/replication"
        )
        assert primary["role"] == "primary"
        assert primary["connected_replicas"] == 1

    def test_replica_rejects_writes_pointing_at_the_primary(self, topology):
        with pytest.raises(urllib.error.HTTPError) as err:
            _http("POST", f"{topology['replica']}/api/v1/assignments",
                  body={"title": "nope"})
        assert err.value.code == 403
        assert err.value.headers["x-carcs-primary"] == topology["primary"]

    def test_reads_survive_a_replica_crash(self, topology):
        topology["procs"]["replica"].kill()
        deadline = time.time() + BOOT_TIMEOUT
        served_by_primary = False
        while time.time() < deadline and not served_by_primary:
            status, headers, _ = _http(
                "GET", f"{topology['router']}/api/v1/assignments",
            )
            assert status == 200  # reads never black out
            served_by_primary = headers["x-carcs-backend"] == "primary"
            time.sleep(0.05)
        assert served_by_primary
        _, _, fleet = _http("GET", f"{topology['router']}/api/v1/fleet")
        assert fleet["healthy_replicas"] == 0
