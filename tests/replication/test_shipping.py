"""Live WAL shipping over TCP: bootstrap, streaming, catch-up, rejoin.

These tests run a real :class:`PrimaryShipper` listener and real
:class:`ReplicaApplier` threads against loopback sockets — the same code
paths ``carcs serve --primary`` / ``--replica`` exercise, minus the
process boundary (the marker-gated multi-process suite covers that).
"""

import time

import pytest

from repro.db import Column, Database, TableSchema, database_to_dict
from repro.replication import PrimaryShipper, ReplicaApplier

CONVERGE_TIMEOUT = 10.0


def _converged(primary: Database, replica: Database) -> bool:
    deadline = time.time() + CONVERGE_TIMEOUT
    while time.time() < deadline:
        if replica.version >= primary.version:
            break
        time.sleep(0.01)
    a = database_to_dict(primary)
    b = database_to_dict(replica)
    a["name"] = b["name"] = "<node>"
    return a == b


@pytest.fixture()
def primary():
    db = Database("primary")
    db.create_table(TableSchema(
        "items", columns=(Column("id", int), Column("name", str)),
    ))
    for i in range(5):
        db.insert("items", name=f"seed-{i}")
    return db


class TestShipAndConverge:
    def test_bootstrap_then_stream(self, primary):
        with PrimaryShipper(primary) as shipper:
            replica = Database("replica")
            with ReplicaApplier(replica, shipper.address) as applier:
                assert applier.wait_ready(CONVERGE_TIMEOUT)
                assert _converged(primary, replica)
                assert applier.snapshots_applied == 1  # the bootstrap
                for i in range(25):
                    primary.insert("items", name=f"live-{i}")
                assert _converged(primary, replica)
                assert applier.frames_applied == 25
                status = applier.status()
                assert status["role"] == "replica"
                assert status["lag_versions"] == 0

    def test_fan_out_to_multiple_replicas(self, primary):
        with PrimaryShipper(primary) as shipper:
            replicas = [Database(f"replica-{i}") for i in range(3)]
            appliers = [
                ReplicaApplier(r, shipper.address).start() for r in replicas
            ]
            try:
                for applier in appliers:
                    assert applier.wait_ready(CONVERGE_TIMEOUT)
                for i in range(10):
                    primary.insert("items", name=f"fan-{i}")
                for replica in replicas:
                    assert _converged(primary, replica)
                assert shipper.status()["connected_replicas"] == 3
            finally:
                for applier in appliers:
                    applier.stop()

    def test_mid_stream_checkpoints_do_not_disturb_convergence(self, primary):
        with PrimaryShipper(primary, checkpoint_every=5) as shipper:
            replica = Database("replica")
            with ReplicaApplier(replica, shipper.address) as applier:
                assert applier.wait_ready(CONVERGE_TIMEOUT)
                for i in range(23):
                    primary.insert("items", name=f"ck-{i}")
                assert _converged(primary, replica)
                # Periodic checkpoints rode along; the replica was
                # already past each one when it arrived.
                deadline = time.time() + CONVERGE_TIMEOUT
                while shipper.snapshots_shipped < 2 and time.time() < deadline:
                    time.sleep(0.01)
                assert shipper.snapshots_shipped >= 2
                assert applier.checkpoints_skipped >= 1


class TestKillAndRejoin:
    def test_rejoin_within_retention_streams_frames(self, primary):
        with PrimaryShipper(primary, retain_frames=100) as shipper:
            replica = Database("replica")
            with ReplicaApplier(replica, shipper.address) as applier:
                assert applier.wait_ready(CONVERGE_TIMEOUT)
                assert _converged(primary, replica)
            # replica offline; a few writes land (within retention)
            for i in range(7):
                primary.insert("items", name=f"offline-{i}")
            with ReplicaApplier(replica, shipper.address) as applier:
                assert applier.wait_ready(CONVERGE_TIMEOUT)
                assert _converged(primary, replica)
                # catch-up used the frame path, not a snapshot
                assert applier.snapshots_applied == 0
                assert applier.frames_applied == 7

    def test_rejoin_past_retention_rebootstraps_from_snapshot(self, primary):
        with PrimaryShipper(primary, retain_frames=4) as shipper:
            replica = Database("replica")
            with ReplicaApplier(replica, shipper.address) as applier:
                assert applier.wait_ready(CONVERGE_TIMEOUT)
                assert _converged(primary, replica)
            # more offline writes than the retention window holds
            for i in range(20):
                primary.insert("items", name=f"gone-{i}")
            with ReplicaApplier(replica, shipper.address) as applier:
                assert applier.wait_ready(CONVERGE_TIMEOUT)
                assert _converged(primary, replica)
                assert applier.snapshots_applied == 1

    def test_replica_from_the_future_rebootstraps(self, primary):
        """A replica whose version exceeds the primary's (diverged
        history — e.g. offsets from a different primary) must be reset
        by snapshot, not trusted to stream."""
        with PrimaryShipper(primary) as shipper:
            replica = Database("replica")
            replica.create_table(TableSchema(
                "foreign", columns=(Column("id", int), Column("x", str)),
            ))
            for i in range(30):
                replica.insert("foreign", x=f"alien-{i}")
            assert replica.version > primary.version
            with ReplicaApplier(replica, shipper.address) as applier:
                assert applier.wait_ready(CONVERGE_TIMEOUT)
                assert _converged(primary, replica)
                assert "foreign" not in replica


class TestLagObservability:
    def test_heartbeats_keep_lag_fresh_when_idle(self, primary):
        with PrimaryShipper(primary, heartbeat_interval=0.05) as shipper:
            replica = Database("replica")
            with ReplicaApplier(replica, shipper.address) as applier:
                assert applier.wait_ready(CONVERGE_TIMEOUT)
                deadline = time.time() + CONVERGE_TIMEOUT
                while applier.heartbeats_seen < 3 and time.time() < deadline:
                    time.sleep(0.01)
                assert applier.heartbeats_seen >= 3
                status = applier.status()
                assert status["lag_frames"] == 0
                assert status["lag_seconds"] == 0.0
                assert status["connected"]

    def test_disconnected_replica_reports_reconnects(self, primary):
        shipper = PrimaryShipper(primary).start()
        replica = Database("replica")
        with ReplicaApplier(
            replica, shipper.address, reconnect_delay=0.05
        ) as applier:
            assert applier.wait_ready(CONVERGE_TIMEOUT)
            shipper.stop()  # primary goes away
            deadline = time.time() + CONVERGE_TIMEOUT
            while applier.reconnects < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert applier.reconnects >= 2
            # primary returns on the same port
            revived = PrimaryShipper(
                primary, shipper.address[0], shipper.address[1],
            ).start()
            try:
                primary.insert("items", name="after-outage")
                assert _converged(primary, replica)
            finally:
                revived.stop()
