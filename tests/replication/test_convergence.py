"""Replication conformance: arbitrary interleavings of snapshot
checkpoints and WAL-frame batches must converge byte-equal.

The harness drives :meth:`ReplicaApplier.handle_message` directly — no
sockets, fully deterministic.  A primary runs a mixed workload while a
commit listener captures every shipped frame and an oracle dump after
each commit; a seeded generator then delivers those frames to a fresh
replica in randomized batches, interleaved with snapshot checkpoints
(stale, current, and fast-forwarding ones) and duplicated batches.
Whatever the interleaving, the replica must land byte-equal with the
primary (``database_to_dict``), stale checkpoints must be skipped
without rewinding readers, and a genuine gap must poison the stream
with ``RecoveryError`` instead of silently diverging.
"""

import random

import pytest

from repro.db import Column, Database, ForeignKey, TableSchema, database_to_dict
from repro.db.errors import RecoveryError
from repro.replication import ReplicaApplier, frames_message, snapshot_message

N_INTERLEAVINGS = 30


def _strip_name(dump):
    dump = dict(dump)
    dump["name"] = "<node>"
    return dump


def _build_history():
    """Run a workload on a primary; capture (frames, oracle dumps).

    ``oracle[i]`` is the state after ``i`` commits; ``frames[i]`` is the
    frame that moved ``oracle[i]`` to ``oracle[i+1]``.
    """
    db = Database("primary")
    frames = []
    db.add_commit_listener(frames.append)
    oracle = [database_to_dict(db)]

    def commit(fn):
        fn()
        oracle.append(database_to_dict(db))

    commit(lambda: db.create_table(TableSchema(
        "materials",
        columns=(
            Column("id", int),
            Column("title", str),
            Column("collection", str, default=""),
        ),
    )))
    commit(lambda: db.create_table(TableSchema(
        "links",
        columns=(Column("id", int), Column("materials_id", int)),
        foreign_keys=(
            ForeignKey("materials_id", "materials", on_delete="cascade"),
        ),
    )))
    for i in range(10):
        commit(lambda i=i: db.insert(
            "materials", title=f"m-{i}", collection="ab"[i % 2],
        ))
    commit(lambda: db.table("materials").create_index("collection"))

    def batch():
        with db.transaction():
            for m in (1, 2, 3):
                db.insert("links", materials_id=m)

    commit(batch)
    commit(lambda: db.update("materials", 4, collection="renamed"))
    commit(lambda: db.delete("materials", 1))  # cascades into links
    for i in range(4):
        commit(lambda i=i: db.insert("materials", title=f"late-{i}"))
    assert len(frames) == len(oracle) - 1
    return db, frames, oracle


@pytest.fixture(scope="module")
def history():
    return _build_history()


def _fresh_applier():
    replica = Database("replica")
    # Address is never dialled — messages are delivered by hand.
    return replica, ReplicaApplier(replica, ("127.0.0.1", 1))


class TestInterleavings:
    def test_randomized_interleavings_converge_byte_equal(self, history):
        primary, frames, oracle = history
        final = _strip_name(oracle[-1])
        for trial in range(N_INTERLEAVINGS):
            rng = random.Random(0xACE0 + trial)
            replica, applier = _fresh_applier()
            delivered = 0  # frames the replica is guaranteed to have
            while delivered < len(frames):
                roll = rng.random()
                if roll < 0.25:
                    # A checkpoint: anywhere in the already-delivered
                    # past (stale -> skipped) or ahead (fast-forward).
                    at = rng.randint(0, len(oracle) - 1)
                    applier.handle_message(
                        snapshot_message(oracle[at], ts=float(at))
                    )
                    delivered = max(delivered, at)
                elif roll < 0.45 and delivered:
                    # A duplicated batch from the past — idempotent.
                    start = rng.randint(0, delivered - 1)
                    end = rng.randint(start + 1, delivered)
                    applier.handle_message(frames_message(
                        frames[start:end], oracle[end]["version"], float(end),
                    ))
                else:
                    # The next contiguous batch.
                    end = rng.randint(delivered + 1, len(frames))
                    applier.handle_message(frames_message(
                        frames[delivered:end],
                        oracle[end]["version"], float(end),
                    ))
                    delivered = end
            assert _strip_name(database_to_dict(replica)) == final, (
                f"interleaving {trial} diverged"
            )
            assert replica.version == primary.version

    def test_counters_account_for_every_delivery(self, history):
        _, frames, oracle = history
        replica, applier = _fresh_applier()
        # oracle[0] is the version-0 empty state the replica already
        # has — a checkpoint at (or below) the current version counts
        # as skipped, never re-applied.
        applier.handle_message(snapshot_message(oracle[0], 0.0))
        applier.handle_message(frames_message(frames, oracle[-1]["version"], 1.0))
        # Replaying the identical batch skips every frame: by then the
        # replica is past all of them (even the version-neutral index
        # frame sits below the final version).
        applier.handle_message(frames_message(frames, oracle[-1]["version"], 2.0))
        assert applier.frames_applied == len(frames)
        assert applier.frames_skipped == len(frames)
        assert applier.snapshots_applied == 0
        assert applier.checkpoints_skipped == 1

    def test_neutral_frame_at_current_version_reapplies(self, history):
        """A pure create_index frame never bumps the version, so a
        duplicate arriving while the replica sits exactly at its version
        cannot be told from a new one — it must (idempotently) apply
        rather than be dropped, or a fresh index would be lost."""
        _, frames, oracle = history
        neutral_at = next(
            i for i, f in enumerate(frames)
            if all(op["o"] == "create_index" for op in f["ops"])
        )
        replica, applier = _fresh_applier()
        applier.handle_message(frames_message(
            frames[:neutral_at + 1], oracle[neutral_at + 1]["version"], 0.0,
        ))
        applied = applier.frames_applied
        applier.handle_message(frames_message(
            [frames[neutral_at]], oracle[neutral_at + 1]["version"], 1.0,
        ))
        assert applier.frames_applied == applied + 1
        table = next(
            t for t in database_to_dict(replica)["tables"]
            if t["schema"]["name"] == "materials"
        )
        assert table["indexes"] == ["collection"]


class TestCheckpointMidBatch:
    """The documented semantics for a checkpoint arriving mid-batch."""

    def test_stale_checkpoint_is_skipped_not_rewound(self, history):
        _, frames, oracle = history
        replica, applier = _fresh_applier()
        applier.handle_message(frames_message(frames[:5], oracle[5]["version"], 0.0))
        state = database_to_dict(replica)
        # A checkpoint captured *before* frames the replica already
        # applied (it raced the frame batch): applying it would rewind
        # concurrent readers, so it must be a counted no-op.
        applier.handle_message(snapshot_message(oracle[3], 1.0))
        assert database_to_dict(replica) == state
        assert applier.checkpoints_skipped == 1
        assert applier.snapshots_applied == 0

    def test_checkpoint_at_current_version_is_skipped(self, history):
        _, frames, oracle = history
        replica, applier = _fresh_applier()
        applier.handle_message(frames_message(frames[:5], oracle[5]["version"], 0.0))
        applier.handle_message(snapshot_message(oracle[5], 1.0))
        assert applier.checkpoints_skipped == 1

    def test_ahead_checkpoint_fast_forwards(self, history):
        _, frames, oracle = history
        replica, applier = _fresh_applier()
        applier.handle_message(frames_message(frames[:2], oracle[2]["version"], 0.0))
        applier.handle_message(snapshot_message(oracle[9], 1.0))
        assert replica.version == oracle[9]["version"]
        assert _strip_name(database_to_dict(replica)) == _strip_name(oracle[9])
        # ...and the frame overlap right after the jump skips cleanly.
        applier.handle_message(
            frames_message(frames[2:], oracle[-1]["version"], 2.0)
        )
        assert _strip_name(database_to_dict(replica)) == _strip_name(oracle[-1])


class TestGaps:
    def test_version_gap_raises_instead_of_diverging(self, history):
        _, frames, oracle = history
        replica, applier = _fresh_applier()
        applier.handle_message(frames_message(frames[:3], oracle[3]["version"], 0.0))
        before = database_to_dict(replica)
        with pytest.raises(RecoveryError, match="replication gap"):
            applier.handle_message(
                frames_message(frames[5:], oracle[-1]["version"], 1.0)
            )
        # The failed frame must not have mutated anything.
        assert database_to_dict(replica) == before

    def test_durable_replica_recovers_to_applied_state(self, history, tmp_path):
        """A durable replica survives a crash: the bootstrap load
        checkpoints its on-disk snapshot (the replay base its own WAL
        frames count from), so reopening without an explicit checkpoint
        must recover everything that was applied."""
        _, frames, oracle = history
        replica = Database.open(tmp_path / "replica-store", wal_sync="off")
        applier = ReplicaApplier(replica, ("127.0.0.1", 1))
        applier.handle_message(snapshot_message(oracle[4], 0.0))
        applier.handle_message(
            frames_message(frames[4:], oracle[-1]["version"], 1.0)
        )
        state = _strip_name(database_to_dict(replica))
        replica.close()  # flush only — no checkpoint: simulate crash+reopen
        reopened = Database.open(tmp_path / "replica-store", wal_sync="off")
        assert reopened.recovery_report["frames_replayed"] == len(frames) - 4
        assert _strip_name(database_to_dict(reopened)) == state
        reopened.close()
