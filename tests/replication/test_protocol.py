"""Wire-protocol conformance: framing, CRC, torn streams, EOF semantics."""

import socket
import struct

import pytest

from repro.replication.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    encode_message,
    frames_message,
    heartbeat_message,
    hello,
    recv_message,
    send_message,
    snapshot_message,
)


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestRoundTrip:
    def test_every_message_kind_round_trips(self, pair):
        left, right = pair
        messages = [
            hello("replica-1", 42),
            hello("replica-1", -1),
            snapshot_message({"version": 7, "tables": {}}, 123.5),
            frames_message(
                [{"v": 8, "ops": [{"t": "x", "o": "insert"}]}], 9, 124.0,
            ),
            heartbeat_message(9, 125.0),
        ]
        for message in messages:
            send_message(left, message)
        for message in messages:
            assert recv_message(right) == message

    def test_clean_eof_at_boundary_reads_none(self, pair):
        left, right = pair
        send_message(left, heartbeat_message(1, 0.0))
        left.close()
        assert recv_message(right) == {"type": "heartbeat", "pv": 1, "ts": 0.0}
        assert recv_message(right) is None

    def test_sizes_are_reported(self, pair):
        left, _ = pair
        message = hello("r", 0)
        assert send_message(left, message) == len(encode_message(message))


class TestTornStreams:
    def test_eof_mid_header_raises(self, pair):
        left, right = pair
        left.sendall(encode_message(hello("r", 0))[:3])
        left.close()
        with pytest.raises(ProtocolError, match="short read"):
            recv_message(right)

    def test_eof_mid_payload_raises(self, pair):
        left, right = pair
        blob = encode_message(snapshot_message({"version": 1}, 0.0))
        left.sendall(blob[:-5])
        left.close()
        with pytest.raises(ProtocolError, match="short read"):
            recv_message(right)

    def test_crc_mismatch_raises(self, pair):
        left, right = pair
        blob = bytearray(encode_message(hello("r", 0)))
        blob[-1] ^= 0xFF
        left.sendall(bytes(blob))
        with pytest.raises(ProtocolError, match="CRC"):
            recv_message(right)

    def test_absurd_length_is_rejected_without_allocating(self, pair):
        left, right = pair
        left.sendall(struct.pack("<II", MAX_MESSAGE_BYTES + 1, 0))
        with pytest.raises(ProtocolError, match="corrupt length"):
            recv_message(right)

    def test_non_object_payload_is_rejected(self, pair):
        left, right = pair
        import json
        import zlib

        payload = json.dumps([1, 2, 3]).encode()
        left.sendall(struct.pack("<II", len(payload), zlib.crc32(payload)))
        left.sendall(payload)
        with pytest.raises(ProtocolError, match="object with a 'type'"):
            recv_message(right)
