"""Tiered storage: blocked checkpoints, lazy page-in, cache bounds.

The format-2 path must be *durability-neutral*: everything the eager
format-1 engine guarantees (crash safety, WAL replay, MVCC pins, unique
and FK enforcement, planner correctness) must hold identically when the
rows live in a cold block tier and page in lazily.
"""

from __future__ import annotations

import json

import pytest

from repro.db import Column, Database, TableSchema, UniqueViolation, query
from repro.db.errors import RecoveryError, RowNotFound
from repro.db.pager import (
    ENV_BLOCK_ROWS,
    ENV_CACHE_BYTES,
    ENV_INLINE_ROWS,
    ROWS_PREFIX,
    BlockCache,
    PagedRows,
)

from tests.faults import failing_replace


N_ROWS = 100


@pytest.fixture()
def blocked_env(monkeypatch):
    """Force every checkpoint into format 2 with tiny (8-row) blocks."""
    monkeypatch.setenv(ENV_INLINE_ROWS, "1")
    monkeypatch.setenv(ENV_BLOCK_ROWS, "8")


def _schema():
    return TableSchema(
        "items",
        columns=(
            Column("id", int),
            Column("name", str),
            Column("group", str),
            Column("score", int, nullable=True),
        ),
        unique=(("name",),),
    )


def _populate(db, n=N_ROWS):
    for i in range(n):
        db.insert(
            "items", name=f"item-{i:04d}", group="xyz"[i % 3],
            score=i % 7 if i % 5 else None,
        )


def _build(tmp_path, n=N_ROWS):
    db = Database.open(tmp_path / "store")
    db.create_table(_schema())
    db.table("items").create_index("group")
    db.table("items").create_sorted_index("score")
    _populate(db, n)
    db.checkpoint()
    db.close()
    return tmp_path / "store"


def _rows_file(directory):
    files = sorted(directory.glob(f"{ROWS_PREFIX}*.dat"))
    assert len(files) == 1, files
    return files[0]


class TestFormatSelection:
    def test_small_databases_stay_inline_format_1(self, tmp_path):
        directory = _build(tmp_path, n=20)
        data = json.loads((directory / "snapshot.json").read_text())
        assert data["format"] == 1
        assert not list(directory.glob(f"{ROWS_PREFIX}*.dat"))

    def test_large_databases_checkpoint_blocked(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        data = json.loads((directory / "snapshot.json").read_text())
        assert data["format"] == 2
        assert _rows_file(directory).name == data["rows_file"]
        entry = {t["schema"]["name"]: t for t in data["tables"]}["items"]
        assert entry["rows"] == N_ROWS
        assert len(entry["blocks"]) == (N_ROWS + 7) // 8
        assert entry["indexes"] == ["group"]
        assert entry["sorted_indexes"] == ["score"]


class TestLazyOpen:
    def test_round_trip_preserves_every_row(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        db = Database.open(directory)
        rows = {row["id"]: row for row in db.table("items")}
        assert len(rows) == N_ROWS
        assert rows[1]["name"] == "item-0000"
        assert rows[N_ROWS]["name"] == f"item-{N_ROWS - 1:04d}"
        db.close()

    def test_open_pages_nothing_in(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        db = Database.open(directory)
        stats = db.storage_stats()
        assert stats["block_cache_resident_blocks"] == 0
        assert stats["tier_blocks"] == (N_ROWS + 7) // 8
        db.close()

    def test_point_read_pages_exactly_one_block(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        db = Database.open(directory)
        assert db.table("items").get(42)["name"] == "item-0041"
        stats = db.storage_stats()
        assert stats["block_cache_resident_blocks"] == 1
        assert stats["block_cache_misses"] == 1
        # Same block again: pure cache hit.
        db.table("items").get(43)
        assert db.storage_stats()["block_cache_hits"] >= 1
        db.close()

    def test_cache_stays_within_budget_and_counts_evictions(
        self, tmp_path, blocked_env, monkeypatch
    ):
        directory = _build(tmp_path)
        monkeypatch.setenv(ENV_CACHE_BYTES, "1")  # evict all but newest
        db = Database.open(directory)
        rows = list(db.table("items"))
        assert len(rows) == N_ROWS
        stats = db.storage_stats()
        assert stats["block_cache_resident_blocks"] == 1
        assert stats["block_cache_evictions"] >= (N_ROWS + 7) // 8 - 1
        db.close()

    def test_lazy_hash_index_answers_correctly(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        db = Database.open(directory)
        found = db.table("items").find(group="x")
        assert sorted(r["id"] for r in found) == [
            i + 1 for i in range(N_ROWS) if i % 3 == 0
        ]
        db.close()

    def test_lazy_unique_maps_still_enforce(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        db = Database.open(directory)
        with pytest.raises(UniqueViolation):
            db.insert("items", name="item-0000", group="x", score=None)
        db.close()


class TestDurability:
    def test_wal_replay_over_paged_tables(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        db = Database.open(directory)
        db.insert("items", name="fresh", group="x", score=1)
        db.update("items", 10, score=99)
        db.delete("items", 20)
        db.close()

        db = Database.open(directory)
        assert db.recovery_report["frames_replayed"] == 3
        assert db.table("items").find_one(name="fresh") is not None
        assert db.table("items").get(10)["score"] == 99
        with pytest.raises(RowNotFound):
            db.table("items").get(20)
        assert len(db.table("items")) == N_ROWS  # +1 insert, -1 delete
        db.close()

    def test_corrupt_block_raises_recovery_error(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        rows_path = _rows_file(directory)
        blob = bytearray(rows_path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        rows_path.write_bytes(bytes(blob))
        db = Database.open(directory)  # manifest alone: opens fine
        with pytest.raises(RecoveryError, match="crc|block"):
            list(db.table("items"))
        db.close()

    def test_missing_rows_file_fails_loudly(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        _rows_file(directory).unlink()
        with pytest.raises(RecoveryError, match="rows file"):
            Database.open(directory)

    def test_crash_before_manifest_publish_keeps_old_tier(
        self, tmp_path, blocked_env
    ):
        directory = _build(tmp_path)
        db = Database.open(directory)
        db.insert("items", name="victim", group="x", score=1)
        with failing_replace():
            with pytest.raises(OSError):
                db.checkpoint()
        db.close()
        # The old manifest + rows file + WAL still recover everything.
        db = Database.open(directory)
        assert db.table("items").find_one(name="victim") is not None
        assert len(db.table("items")) == N_ROWS + 1
        db.close()

    def test_recheckpoint_compacts_overlay_into_new_tier(
        self, tmp_path, blocked_env
    ):
        directory = _build(tmp_path)
        db = Database.open(directory)
        db.insert("items", name="late", group="y", score=3)
        db.delete("items", 1)
        db.checkpoint()
        stats = db.storage_stats()
        assert stats["tier_overlay_rows"] == 0
        assert stats["tier_tombstone_rows"] == 0
        data = json.loads((directory / "snapshot.json").read_text())
        entry = {t["schema"]["name"]: t for t in data["tables"]}["items"]
        assert entry["rows"] == N_ROWS  # +1 insert, -1 delete
        assert db.table("items").find_one(name="late") is not None
        db.close()


class TestMvcc:
    def test_pinned_snapshot_survives_tier_swap(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        db = Database.open(directory)
        with db.pinned():
            before = db.table("items").get(5)["score"]
            db_version = db.version
            # A concurrent writer mutates and compacts: the rows file is
            # replaced and the *old* one unlinked.  The pin must keep
            # reading the superseded tier (open fh semantics).
            db.update("items", 5, score=88)
            db.checkpoint()
            assert db.table("items").get(5)["score"] == before
            assert db.version == db_version
        db.close()

    def test_overlay_reads_shadow_the_block_tier(self, tmp_path, blocked_env):
        directory = _build(tmp_path)
        db = Database.open(directory)
        db.update("items", 7, score=77)
        assert db.table("items").get(7)["score"] == 77
        db.delete("items", 8)
        assert 8 not in db.table("items")
        assert db.table("items").find_one(name="item-0007") is None
        db.close()


PIPELINES = (  # (builder, produces an ordered result)
    (lambda db: query(db, "items").filter(group="x"), False),
    (lambda db: query(db, "items").filter(group="y", score=3), False),
    (lambda db: query(db, "items").where_range("score", 2, 5), False),
    (lambda db: query(db, "items").where_prefix("name", "item-00"), False),
    (lambda db: query(db, "items").where_in("group", ["x", "z"])
     .order_by("score").limit(10), True),
    (lambda db: query(db, "items").order_by("name", descending=True)
     .offset(3).limit(5), True),
)


class TestPlannerEquivalence:
    """``planned ≡ naive`` on cold, partially-paged and resident tables."""

    @pytest.mark.parametrize("warmup", ["cold", "partial", "resident"])
    @pytest.mark.parametrize("pipeline", range(len(PIPELINES)))
    def test_planned_equals_naive(
        self, tmp_path, blocked_env, warmup, pipeline
    ):
        directory = _build(tmp_path)
        db = Database.open(directory)
        if warmup == "partial":
            db.table("items").get(42)  # one block resident
        elif warmup == "resident":
            list(db.table("items"))  # everything paged in
        build, ordered = PIPELINES[pipeline]
        q = build(db)
        planned, naive = q.all(), q._run_naive()
        if ordered:
            assert planned == naive
        else:
            def key(row):
                return row["id"]
            assert sorted(planned, key=key) == sorted(naive, key=key)
        db.close()


class TestPagedRowsUnit:
    def test_foreign_type_probe_is_absent_not_an_error(
        self, tmp_path, blocked_env
    ):
        directory = _build(tmp_path)
        db = Database.open(directory)
        rows = db.table("items")._rows
        assert isinstance(rows, PagedRows)
        assert "not-an-int" not in rows
        db.close()

    def test_cache_eviction_keeps_at_least_one_block(self):
        cache = BlockCache(budget_bytes=10)
        cache.put(("g", "t", 0), {"a": 1}, cost=50)
        assert cache.stats()["resident_blocks"] == 1
        cache.put(("g", "t", 1), {"b": 2}, cost=60)
        stats = cache.stats()
        assert stats["resident_blocks"] == 1
        assert stats["evictions"] == 1
        assert stats["resident_bytes"] == 60
