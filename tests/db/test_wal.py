"""WAL durability: record codec, fsync policy, open/replay, checkpoints."""

import json
import os
import struct

import pytest

from repro.db import (
    Column,
    Database,
    ForeignKey,
    TableSchema,
    read_wal,
    truncate_wal,
)
from repro.db.wal import (
    DEFAULT_BATCH_EVERY,
    MAGIC,
    WalWriter,
    encode_record,
    env_sync_mode,
)


def schema() -> TableSchema:
    return TableSchema(
        "items",
        columns=(Column("id", int), Column("name", str)),
        unique=(("name",),),
    )


def open_db(tmp_path, **kwargs) -> Database:
    kwargs.setdefault("wal_sync", "off")
    return Database.open(tmp_path / "store", **kwargs)


class TestRecordCodec:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        w = WalWriter(path, sync="off")
        w.append({"v": 1, "ops": [{"t": "items", "o": "insert", "pk": 1}]})
        w.append({"v": 2, "ops": []})
        w.close()
        frames, valid, torn = read_wal(path)
        assert [f["v"] for f in frames] == [1, 2]
        assert not torn
        assert valid == path.stat().st_size

    def test_missing_file_reads_empty(self, tmp_path):
        frames, valid, torn = read_wal(tmp_path / "absent.log")
        assert frames == [] and not torn

    def test_foreign_header_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL\x00" + b"garbage")
        with pytest.raises(ValueError):
            read_wal(path)

    def test_crc_flip_marks_tail_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        w = WalWriter(path, sync="off")
        w.append({"v": 1, "ops": []})
        w.append({"v": 2, "ops": []})
        w.close()
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # corrupt the last record's payload
        path.write_bytes(bytes(blob))
        frames, valid, torn = read_wal(path)
        assert [f["v"] for f in frames] == [1]
        assert torn
        truncate_wal(path, valid)
        frames2, _, torn2 = read_wal(path)
        assert [f["v"] for f in frames2] == [1] and not torn2

    def test_absurd_length_prefix_is_torn_not_allocated(self, tmp_path):
        path = tmp_path / "wal.log"
        record = encode_record({"v": 1, "ops": []})
        bogus = struct.pack("<II", 2**31, 0)
        path.write_bytes(MAGIC + record + bogus)
        frames, valid, torn = read_wal(path)
        assert [f["v"] for f in frames] == [1]
        assert torn and valid == len(MAGIC) + len(record)


class TestSyncModes:
    def test_always_fsyncs_every_append(self, tmp_path):
        w = WalWriter(tmp_path / "w.log", sync="always")
        for v in range(5):
            w.append({"v": v, "ops": []})
        assert w.fsyncs == 5
        w.close()

    def test_batch_fsyncs_every_n(self, tmp_path):
        w = WalWriter(tmp_path / "w.log", sync="batch", batch_every=3)
        for v in range(7):
            w.append({"v": v, "ops": []})
        assert w.fsyncs == 2  # at appends 3 and 6
        w.close()  # close barrier syncs the remainder
        assert w.fsyncs == 3

    def test_off_never_fsyncs(self, tmp_path):
        w = WalWriter(tmp_path / "w.log", sync="off")
        for v in range(5):
            w.append({"v": v, "ops": []})
        w.close()
        assert w.fsyncs == 0

    def test_env_sync_mode(self, monkeypatch):
        monkeypatch.setenv("CARCS_WAL_SYNC", "always")
        assert env_sync_mode() == "always"
        monkeypatch.setenv("CARCS_WAL_SYNC", "nonsense")
        assert env_sync_mode() == "batch"
        monkeypatch.delenv("CARCS_WAL_SYNC")
        assert env_sync_mode() == "batch"

    def test_writer_honours_env_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CARCS_WAL_SYNC", "always")
        w = WalWriter(tmp_path / "w.log")
        assert w.sync == "always"
        w.close()


class TestOpenAndReplay:
    def test_fresh_directory_starts_empty_and_durable(self, tmp_path):
        db = open_db(tmp_path)
        assert db.version == 0
        db.create_table(schema())
        db.insert("items", name="a")
        db.close()
        again = open_db(tmp_path)
        assert again.table("items").find_one(name="a") is not None
        assert again.version == db.version
        again.close()

    def test_replay_preserves_everything(self, tmp_path):
        db = open_db(tmp_path)
        db.create_table(schema())
        db.table("items").create_index("name")
        with db.transaction():
            for i in range(10):
                db.insert("items", name=f"n{i}")
        db.update("items", 3, name="renamed")
        db.delete("items", 5)
        db.close()
        again = open_db(tmp_path)
        report = again.recovery_report
        assert report["frames_replayed"] > 0
        assert again.version == db.version
        assert again.table("items").has_index("name")
        assert again.table("items").get(3)["name"] == "renamed"
        assert again.table("items").get_or_none(5) is None
        assert len(again.table("items")) == 9
        again.close()

    def test_cascade_delete_replays(self, tmp_path):
        db = open_db(tmp_path)
        db.create_table(schema())
        db.create_table(TableSchema(
            "children",
            columns=(Column("id", int), Column("items_id", int)),
            foreign_keys=(
                ForeignKey("items_id", "items", on_delete="cascade"),
            ),
        ))
        db.insert("items", name="parent")
        db.insert("children", items_id=1)
        db.insert("children", items_id=1)
        db.delete("items", 1)  # cascades through both children
        db.close()
        again = open_db(tmp_path)
        assert len(again.table("items")) == 0
        assert len(again.table("children")) == 0
        again.close()

    def test_rolled_back_transaction_is_not_logged(self, tmp_path):
        db = open_db(tmp_path)
        db.create_table(schema())
        db.insert("items", name="kept")
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("items", name="doomed")
                raise RuntimeError("abort")
        db.close()
        again = open_db(tmp_path)
        assert [r["name"] for r in again.table("items")] == ["kept"]
        again.close()

    def test_torn_tail_recovers_to_last_commit(self, tmp_path):
        db = open_db(tmp_path)
        db.create_table(schema())
        db.insert("items", name="a")
        db.insert("items", name="b")
        db.close()
        wal = tmp_path / "store" / "wal.log"
        blob = wal.read_bytes()
        wal.write_bytes(blob[:-3])  # tear mid-record
        again = open_db(tmp_path)
        report = again.recovery_report
        assert report["torn"] and report["truncated_bytes"] > 0
        assert [r["name"] for r in again.table("items")] == ["a"]
        # The log is clean again: the next open finds no tear.
        again.insert("items", name="c")
        again.close()
        third = open_db(tmp_path)
        assert not third.recovery_report["torn"]
        assert {r["name"] for r in third.table("items")} == {"a", "c"}
        third.close()


class TestCheckpoint:
    def test_checkpoint_resets_the_wal(self, tmp_path):
        db = open_db(tmp_path)
        db.create_table(schema())
        for i in range(5):
            db.insert("items", name=f"n{i}")
        size_before = db.wal_stats()["size_bytes"]
        db.checkpoint()
        assert db.wal_stats()["size_bytes"] < size_before
        db.insert("items", name="post")
        db.close()
        again = open_db(tmp_path)
        assert again.recovery_report["snapshot_version"] > 0
        assert len(again.table("items")) == 6
        assert again.version == db.version
        again.close()

    def test_auto_checkpoint_on_wal_growth(self, tmp_path):
        db = open_db(tmp_path, compact_bytes=2_000)
        db.create_table(schema())
        for i in range(200):
            db.insert("items", name=f"name-{i:04d}")
        assert db.wal_stats()["checkpoints"] >= 1
        assert db.wal_stats()["size_bytes"] < 2_000 + 1_000
        db.close()
        again = open_db(tmp_path)
        assert len(again.table("items")) == 200
        again.close()

    def test_leftover_wal_after_checkpoint_replays_as_noop(self, tmp_path):
        # Simulate "crash between snapshot replace and wal reset": the
        # snapshot subsumes the log, whose frames must replay as no-ops.
        db = open_db(tmp_path)
        db.create_table(schema())
        db.insert("items", name="a")
        db.close()
        wal = tmp_path / "store" / "wal.log"
        stale = wal.read_bytes()
        db2 = open_db(tmp_path)
        db2.checkpoint()
        db2.close()
        wal.write_bytes(stale)  # resurrect the pre-checkpoint log
        again = open_db(tmp_path)
        assert len(again.table("items")) == 1
        assert again.version == db2.version
        again.close()


class TestAttach:
    def test_attach_makes_memory_db_durable(self, tmp_path):
        db = Database("mem")
        db.create_table(schema())
        db.insert("items", name="a")
        db.attach(tmp_path / "store", wal_sync="off")
        db.insert("items", name="b")  # logged post-attach
        db.close()
        again = open_db(tmp_path)
        assert {r["name"] for r in again.table("items")} == {"a", "b"}
        again.close()

    def test_double_attach_rejected(self, tmp_path):
        db = Database("mem")
        db.attach(tmp_path / "one", wal_sync="off")
        with pytest.raises(ValueError):
            db.attach(tmp_path / "two", wal_sync="off")
        db.close()

    def test_snapshot_file_is_json(self, tmp_path):
        db = Database("mem")
        db.create_table(schema())
        db.insert("items", name="a")
        path = db.attach(tmp_path / "store", wal_sync="off")
        data = json.loads(path.read_text())
        assert data["format"] == 1
        assert data["version"] == db.version
        db.close()
