"""Query-builder behaviour."""

import pytest

from repro.db import Column, Database, ForeignKey, TableSchema, query
from repro.db.errors import SchemaError


@pytest.fixture()
def db():
    db = Database()
    db.create_table(TableSchema(
        "books",
        columns=(
            Column("id", int),
            Column("title", str),
            Column("year", int, nullable=True, default=None),
            Column("genre", str, default="misc"),
        ),
    ))
    rows = [
        ("A", 2001, "scifi"), ("B", 1999, "scifi"), ("C", 2010, "history"),
        ("D", None, "history"), ("E", 2005, "misc"),
    ]
    for title, year, genre in rows:
        db.insert("books", title=title, year=year, genre=genre)
    return db


class TestFilters:
    def test_filter_equality(self, db):
        titles = [r["title"] for r in query(db, "books").filter(genre="scifi")]
        assert sorted(titles) == ["A", "B"]

    def test_where_predicate(self, db):
        hits = query(db, "books").where(
            lambda r: r["year"] is not None and r["year"] > 2000
        ).all()
        assert sorted(r["title"] for r in hits) == ["A", "C", "E"]

    def test_where_in(self, db):
        hits = query(db, "books").where_in("title", ["A", "D"]).all()
        assert sorted(r["title"] for r in hits) == ["A", "D"]

    def test_chained_filters_conjunction(self, db):
        hits = (
            query(db, "books")
            .filter(genre="scifi")
            .where(lambda r: r["year"] == 1999)
            .all()
        )
        assert [r["title"] for r in hits] == ["B"]

    def test_builder_is_immutable(self, db):
        base = query(db, "books")
        narrowed = base.filter(genre="scifi")
        assert base.count() == 5
        assert narrowed.count() == 2


class TestOrderingAndSlicing:
    def test_order_by_ascending(self, db):
        titles = [
            r["title"]
            for r in query(db, "books").where(lambda r: r["year"] is not None)
            .order_by("year")
        ]
        assert titles == ["B", "A", "E", "C"]

    def test_order_by_descending(self, db):
        years = query(db, "books").where(
            lambda r: r["year"] is not None
        ).order_by("year", descending=True).values("year")
        assert years == sorted(years, reverse=True)

    def test_none_sorts_last(self, db):
        titles = [r["title"] for r in query(db, "books").order_by("year")]
        assert titles[-1] == "D"

    def test_limit_offset(self, db):
        page = query(db, "books").order_by("title").offset(1).limit(2).all()
        assert [r["title"] for r in page] == ["B", "C"]

    def test_first_and_exists(self, db):
        assert query(db, "books").filter(genre="misc").first()["title"] == "E"
        assert query(db, "books").filter(genre="nope").first() is None
        assert query(db, "books").filter(genre="misc").exists()
        assert not query(db, "books").filter(genre="nope").exists()


class TestProjectionAggregation:
    def test_select_projects_columns(self, db):
        rows = query(db, "books").select("title").limit(1).all()
        assert set(rows[0].keys()) == {"title"}

    def test_select_unknown_column(self, db):
        with pytest.raises(SchemaError):
            query(db, "books").select("bogus").all()

    def test_group_count(self, db):
        counts = query(db, "books").group_count("genre")
        assert counts == {"scifi": 2, "history": 2, "misc": 1}

    def test_aggregate(self, db):
        total = query(db, "books").where(
            lambda r: r["year"] is not None
        ).aggregate("year", sum)
        assert total == 2001 + 1999 + 2010 + 2005

    def test_values(self, db):
        assert sorted(query(db, "books").values("title")) == list("ABCDE")

    def test_unknown_table(self, db):
        with pytest.raises(SchemaError):
            query(db, "nope")


class TestJoin:
    def test_join_via_link_table(self, db):
        db.create_table(TableSchema("authors", columns=(Column("id", int), Column("name", str))))
        db.create_table(TableSchema(
            "book_authors",
            columns=(Column("id", int), Column("books_id", int), Column("authors_id", int)),
            foreign_keys=(
                ForeignKey("books_id", "books"),
                ForeignKey("authors_id", "authors"),
            ),
        ))
        a1 = db.insert("authors", name="Ann")["id"]
        a2 = db.insert("authors", name="Bob")["id"]
        db.insert("book_authors", books_id=1, authors_id=a1)
        db.insert("book_authors", books_id=2, authors_id=a1)
        db.insert("book_authors", books_id=3, authors_id=a2)
        authors = query(db, "books").filter(genre="scifi").join_via(
            "book_authors",
            local_column="books_id",
            remote_column="authors_id",
            remote_table="authors",
        )
        assert [a["name"] for a in authors] == ["Ann"]
