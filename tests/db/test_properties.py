"""Property-based tests of the relational engine (hypothesis)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Column, Database, TableSchema
from repro.db.errors import UniqueViolation

names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=8,
)


def fresh_table_db() -> Database:
    db = Database()
    db.create_table(TableSchema(
        "items",
        columns=(Column("id", int), Column("name", str), Column("v", int, default=0)),
        unique=(("name",),),
    ))
    return db


@given(st.lists(names, min_size=1, max_size=30))
def test_insert_count_matches_distinct_names(batch):
    """Inserting a batch with a unique column keeps exactly the distinct
    values, regardless of duplicate ordering."""
    db = fresh_table_db()
    for name in batch:
        try:
            db.insert("items", name=name)
        except UniqueViolation:
            pass
    assert len(db.table("items")) == len(set(batch))
    assert sorted(db.table("items").column_values("name")) == sorted(set(batch))


@given(st.lists(st.tuples(names, st.integers(-100, 100)), min_size=1, max_size=25))
def test_find_equals_bruteforce_scan(pairs):
    """Indexed find must agree with a brute-force scan for any data."""
    db = fresh_table_db()
    inserted = {}
    for name, v in pairs:
        if name not in inserted:
            db.insert("items", name=name, v=v)
            inserted[name] = v
    table = db.table("items")
    table.create_index("v")
    for probe in {v for _, v in pairs} | {0, 1}:
        via_index = sorted(r["name"] for r in table.find(v=probe))
        brute = sorted(name for name, v in inserted.items() if v == probe)
        assert via_index == brute


@given(
    st.lists(names, min_size=1, max_size=15, unique=True),
    st.data(),
)
def test_delete_then_reinsert_is_clean(batch, data):
    """After deleting any subset, the unique values become reusable and
    counts stay consistent."""
    db = fresh_table_db()
    ids = {}
    for name in batch:
        ids[name] = db.insert("items", name=name)["id"]
    to_delete = data.draw(st.lists(st.sampled_from(batch), unique=True))
    for name in to_delete:
        db.delete("items", ids[name])
    assert len(db.table("items")) == len(batch) - len(to_delete)
    for name in to_delete:
        db.insert("items", name=name)  # must not raise
    assert len(db.table("items")) == len(batch)


@given(st.lists(names, min_size=1, max_size=20, unique=True), st.integers(0, 19))
def test_transaction_rollback_restores_exact_state(batch, split_at):
    """Whatever happens inside an aborted transaction, the table afterwards
    equals the table before, row for row."""
    db = fresh_table_db()
    split_at = min(split_at, len(batch))
    for name in batch[:split_at]:
        db.insert("items", name=name)
    before = sorted(
        (r["id"], r["name"]) for r in db.table("items").find()
    )
    with pytest.raises(RuntimeError):
        with db.transaction():
            for name in batch[split_at:]:
                db.insert("items", name=name)
            if batch[:split_at]:
                db.delete("items", before[0][0])
            raise RuntimeError
    after = sorted((r["id"], r["name"]) for r in db.table("items").find())
    assert after == before


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.tuples(names, st.integers(-5, 5)), min_size=1, max_size=12),
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            names,
            st.integers(-5, 5),
            st.integers(0, 11),
        ),
        min_size=1,
        max_size=12,
    ),
)
def test_aborted_mutations_preserve_index_invariants(seed_rows, tx_ops):
    """Any aborted mutation sequence leaves secondary indexes, unique
    constraints, versions and the id counter exactly as they were.

    Regression for the snapshot-era engine, whose rollback restored rows
    but not index state touched inside the aborted transaction.
    """
    db = fresh_table_db()
    rows = {}
    seen_names = set()
    for name, v in seed_rows:
        if name not in seen_names:
            seen_names.add(name)
            rows[db.insert("items", name=name, v=v)["id"]] = name
    table = db.table("items")
    table.create_index("v")

    before_rows = sorted((r["id"], r["name"], r["v"]) for r in table.find())
    before_version = (db.version, table.version)
    before_by_v = {
        v: sorted(r["id"] for r in table.find(v=v)) for v in range(-5, 6)
    }

    ids = sorted(rows)
    with pytest.raises(RuntimeError):
        with db.transaction():
            for op, name, v, pick in tx_ops:
                try:
                    if op == "insert":
                        db.insert("items", name=name, v=v)
                    elif op == "update" and ids:
                        db.update("items", ids[pick % len(ids)], v=v)
                    elif op == "delete" and ids:
                        db.delete("items", ids[pick % len(ids)])
                        ids = [i for i in ids if i != ids[pick % len(ids)]]
                except UniqueViolation:
                    pass
            raise RuntimeError

    # Rows, versions, and the indexed view all match the pre-tx state.
    assert sorted((r["id"], r["name"], r["v"]) for r in table.find()) == before_rows
    assert (db.version, table.version) == before_version
    for v in range(-5, 6):
        via_index = sorted(r["id"] for r in table.find(v=v))
        assert via_index == before_by_v[v]
        brute = sorted(rid for rid, name, rv in before_rows if rv == v)
        assert via_index == brute

    # Unique names deleted in the aborted tx are NOT reusable (the rows
    # are back); names inserted in the aborted tx ARE reusable.
    tx_inserted = {
        name for op, name, _, _ in tx_ops if op == "insert"
    } - {name for _, name, _ in before_rows}
    for name in tx_inserted:
        db.insert("items", name=name)  # must not raise
    # And fresh inserts resume from the pre-transaction id counter.
    existing = {rid for rid, _, _ in before_rows}
    new_id = db.insert("items", name="zz-post-rollback")["id"]
    assert new_id not in existing


@settings(max_examples=30)
@given(st.lists(st.tuples(names, st.integers(0, 5)), min_size=1, max_size=30))
def test_group_count_sums_to_total(pairs):
    db = fresh_table_db()
    seen = set()
    for name, v in pairs:
        if name in seen:
            continue
        seen.add(name)
        db.insert("items", name=name, v=v)
    from repro.db import query

    counts = query(db, "items").group_count("v")
    assert sum(counts.values()) == len(seen)
