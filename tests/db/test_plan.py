"""Cost-based planner: plan choice, pushdowns, durability, EXPLAIN.

Covers the deterministic half of the planner contract; the randomized
planned-vs-naive equivalence lives in ``test_planner_property.py``.
"""

import pytest

from repro.db import (
    Column,
    Database,
    ForeignKey,
    SortedIndex,
    TableSchema,
    build_plan,
    query,
    render_plan,
)
from repro.db.errors import SchemaError
from repro.db.plan import (
    Filter,
    FullScan,
    IndexEq,
    IndexRange,
    PkLookup,
    QuerySpec,
    SemiJoin,
    Slice,
    Sort,
)
from repro.db.table import Table
from repro.obs import MODE_ALL, TraceStore, Tracer

NAMES = [
    "apple", "apricot", "banana", "blueberry", "cherry",
    "date", "elderberry", "fig", "grape", "kiwi",
]


def make_db() -> Database:
    """items: hash index on group, sorted indexes on name and score."""
    db = Database("plantest")
    db.create_table(TableSchema(
        "items",
        columns=(
            Column("id", int),
            Column("name", str),
            Column("group", str, default=""),
            Column("score", int, nullable=True, default=None),
        ),
    ))
    items = db.table("items")
    items.create_index("group")
    items.create_sorted_index("name")
    items.create_sorted_index("score")
    for i, name in enumerate(NAMES):
        db.insert(
            "items",
            name=name,
            group="even" if i % 2 == 0 else "odd",
            score=None if i % 3 == 0 else i * 10,
        )
    return db


def unwrap(node):
    """The access node at the bottom of a plan tree."""
    while node.children():
        node = node.children()[0]
    return node


class TestSortedIndex:
    def test_eq_and_nones(self):
        s = SortedIndex()
        for pk, value in [(1, "b"), (2, "a"), (3, None), (4, "a")]:
            s.add(value, pk)
        assert s.eq_pks("a") == [2, 4]
        assert s.eq_pks(None) == [3]
        assert s.eq_count("a") == 2
        s.remove("a", 2)
        assert s.eq_pks("a") == [4]

    def test_range_bounds_inclusive_exclusive(self):
        s = SortedIndex()
        for pk, value in enumerate([10, 20, 20, 30, 40]):
            s.add(value, pk)
        lo, hi = s.range_bounds(20, 30)          # [20, 30)
        assert [v for v, _ in s.entries[lo:hi]] == [20, 20]
        lo, hi = s.range_bounds(20, 30, include_low=False, include_high=True)
        assert [v for v, _ in s.entries[lo:hi]] == [30]
        lo, hi = s.range_bounds(None, None)      # unbounded
        assert (lo, hi) == (0, 5)

    def test_prefix_bounds(self):
        s = SortedIndex()
        for pk, value in enumerate(["ant", "apex", "apple", "bee"]):
            s.add(value, pk)
        lo, hi = s.prefix_bounds("ap")
        assert [v for v, _ in s.entries[lo:hi]] == ["apex", "apple"]
        assert s.prefix_bounds("") == (0, 4)
        lo, hi = s.prefix_bounds("zz")
        assert lo == hi

    def test_scan_direction_and_none_placement(self):
        s = SortedIndex()
        for pk, value in [(1, "b"), (2, None), (3, "a")]:
            s.add(value, pk)
        # Ascending: values first, Nones last (NULLS LAST).
        assert list(s.scan(0, 2, with_nones=True)) == [3, 1, 2]
        # Descending mirrors the canonical reverse sort: Nones first.
        assert list(s.scan(0, 2, descending=True, with_nones=True)) \
            == [2, 1, 3]


class TestPlanChoice:
    def test_pk_equality_is_a_lookup(self):
        db = make_db()
        node = query(db, "items").filter(id=3).plan()
        assert isinstance(node, PkLookup)
        assert node.est_rows == 1.0

    def test_hash_index_beats_full_scan(self):
        db = make_db()
        node = query(db, "items").filter(group="even").plan()
        assert isinstance(node, IndexEq)
        assert node.index_kind == "hash"
        # The consumed equality is not re-checked by a residual filter.
        assert not isinstance(node, Filter)

    def test_unindexed_equality_full_scans_with_filter(self):
        db = make_db()
        node = query(db, "items").filter(score=10).where(
            lambda r: True).plan()
        # score has a *sorted* index, so equality still probes it...
        assert isinstance(unwrap(node), IndexEq)
        assert unwrap(node).index_kind == "sorted"
        # ...while the opaque predicate stays residual.
        assert isinstance(node, Filter)
        assert node.predicates

    def test_range_scan_elides_matching_sort(self):
        db = make_db()
        q = query(db, "items").where_range("name", "b", "e").order_by("name")
        node = q.plan()
        assert isinstance(node, IndexRange)          # no Sort anywhere
        assert not node.descending
        rows = [r["name"] for r in q.all()]
        assert rows == sorted(rows)
        assert all("b" <= n < "e" for n in rows)

    def test_descending_range_scan(self):
        db = make_db()
        q = (query(db, "items").where_range("name", "b", "e")
             .order_by("name", descending=True))
        node = q.plan()
        assert isinstance(node, IndexRange)
        assert node.descending
        rows = [r["name"] for r in q.all()]
        assert rows == sorted(rows, reverse=True)

    def test_order_only_scan_replaces_sort(self):
        db = make_db()
        node = query(db, "items").order_by("score").plan()
        assert isinstance(node, IndexRange)
        assert node.label == "order-only"
        assert node.with_nones

    def test_sort_needed_for_unindexed_order(self):
        db = make_db()
        node = query(db, "items").order_by("group").plan()
        assert isinstance(node, Sort)
        assert isinstance(unwrap(node), FullScan)

    def test_prefix_scan(self):
        db = make_db()
        q = query(db, "items").where_prefix("name", "ap")
        node = q.plan()
        assert isinstance(node, IndexRange)
        assert "prefix" in node.label
        assert sorted(r["name"] for r in q.all()) == ["apple", "apricot"]

    def test_prefix_on_non_str_column_is_residual(self):
        db = make_db()
        node = query(db, "items").where_prefix("score", "1").plan()
        assert isinstance(node, Filter)
        assert isinstance(unwrap(node), FullScan)

    def test_nulls_order_canonically(self):
        db = make_db()
        asc = [r["score"] for r in query(db, "items").order_by("score")]
        assert asc[-sum(v is None for v in asc):] == [None] * asc.count(None)
        desc = [r["score"] for r in
                query(db, "items").order_by("score", descending=True)]
        assert desc[:desc.count(None)] == [None] * desc.count(None)
        assert list(reversed(desc)) == asc  # pk tie-break mirrors too


class TestPushdowns:
    def test_limit_pushdown_stops_ordered_scan_early(self):
        db = make_db()
        node = query(db, "items").order_by("name").limit(2).plan()
        assert isinstance(node, Slice)
        scan = unwrap(node)
        assert isinstance(scan, IndexRange)
        rows = list(node.rows())
        assert [r["name"] for r in rows] == ["apple", "apricot"]
        # The scan produced only the two rows the slice consumed — not
        # all ten — because Slice closes its child generator early.
        assert scan.actual_rows == 2

    def test_offset_pushdown_accounting(self):
        db = make_db()
        node = query(db, "items").order_by("name").offset(8).limit(5).plan()
        rows = list(node.rows())
        assert [r["name"] for r in rows] == ["grape", "kiwi"]
        assert node.actual_rows == 2

    def test_actual_rows_recorded_on_full_consumption(self):
        db = make_db()
        node = query(db, "items").filter(group="even").plan()
        assert list(node.rows())
        assert node.actual_rows == 5
        assert node.est_rows == 5.0


class TestCountExists:
    def test_count_never_scans_for_pure_stats(self, monkeypatch):
        db = make_db()

        def boom(self):
            raise AssertionError("count() touched rows")

        monkeypatch.setattr(Table, "iter_rows", boom)
        assert query(db, "items").count() == 10
        assert query(db, "items").filter(group="even").count() == 5
        assert query(db, "items").filter(id=3).count() == 1
        assert query(db, "items").filter(id=999).count() == 0
        assert query(db, "items").where_range("score", 10, 40).count() == 2
        assert query(db, "items").where_prefix("name", "ap").count() == 2
        assert query(db, "items").filter(score=None).count() == 4

    def test_count_folds_offset_and_limit(self):
        db = make_db()
        q = query(db, "items").filter(group="even")
        assert q.offset(2).count() == 3
        assert q.offset(2).limit(2).count() == 2
        assert q.offset(99).count() == 0

    def test_count_streams_for_residuals(self):
        db = make_db()
        n = query(db, "items").where(
            lambda r: r["score"] is not None and r["score"] > 30).count()
        assert n == len([r for r in query(db, "items")._run_naive()
                         if r["score"] is not None and r["score"] > 30])

    def test_exists_short_circuits(self, monkeypatch):
        db = make_db()
        consumed = []
        original = Table.iter_rows

        def counting(self):
            for row in original(self):
                consumed.append(row)
                yield row

        monkeypatch.setattr(Table, "iter_rows", counting)
        assert query(db, "items").exists()
        assert len(consumed) == 1  # stopped after the first row
        assert not query(db, "items").filter(group="nope").exists()


class TestQueryBuilders:
    def test_where_range_intersects_repeats(self):
        db = make_db()
        q = (query(db, "items")
             .where_range("score", 10, None)
             .where_range("score", None, 50))
        assert sorted(r["score"] for r in q.all()) == [10, 20, 40]

    def test_disjoint_prefixes_match_nothing(self):
        db = make_db()
        q = (query(db, "items").where_prefix("name", "ap")
             .where_prefix("name", "ba"))
        assert q.all() == []
        assert not q.exists()

    def test_nested_prefixes_keep_the_stricter(self):
        db = make_db()
        q = (query(db, "items").where_prefix("name", "a")
             .where_prefix("name", "apr"))
        assert [r["name"] for r in q.all()] == ["apricot"]

    def test_where_in_is_structured(self):
        db = make_db()
        q = query(db, "items").where_in("name", ["fig", "kiwi", "nope"])
        assert sorted(r["name"] for r in q.all()) == ["fig", "kiwi"]

    def test_unknown_column_rejected_everywhere(self):
        db = make_db()
        with pytest.raises(SchemaError):
            query(db, "items").where_range("nope", 1, 2).all()
        with pytest.raises(SchemaError):
            query(db, "items").where_prefix("nope", "x").count()
        with pytest.raises(SchemaError):
            query(db, "items").where_in("nope", [1]).exists()


class TestSemiJoin:
    def make_linked(self, n_users=3, n_groups=4):
        db = Database("jointest")
        db.create_table(TableSchema(
            "users", columns=(Column("id", int), Column("name", str)),
        ))
        db.create_table(TableSchema(
            "groups", columns=(Column("id", int), Column("name", str)),
        ))
        db.create_table(TableSchema(
            "memberships",
            columns=(
                Column("id", int),
                Column("user_id", int),
                Column("group_id", int),
            ),
            foreign_keys=(
                ForeignKey("user_id", "users"),
                ForeignKey("group_id", "groups"),
            ),
        ))
        for i in range(n_users):
            db.insert("users", name=f"u{i}")
        for i in range(n_groups):
            db.insert("groups", name=f"g{i}")
        return db

    def test_join_via_results_in_remote_pk_order(self):
        db = self.make_linked()
        db.insert("memberships", user_id=1, group_id=3)
        db.insert("memberships", user_id=1, group_id=1)
        db.insert("memberships", user_id=2, group_id=2)
        db.insert("memberships", user_id=1, group_id=3)  # duplicate link
        rows = query(db, "users").filter(id=1).join_via(
            "memberships", local_column="user_id",
            remote_column="group_id", remote_table="groups",
        )
        assert [r["id"] for r in rows] == [1, 3]

    def test_probe_strategy_for_selective_local_side(self):
        db = self.make_linked()
        for g in range(1, 5):
            db.insert("memberships", user_id=1, group_id=g)
        source = db.table("users")
        local = build_plan(source, QuerySpec(equals={"id": 1}))
        node = SemiJoin(local, "id", db.table("memberships"),
                        "user_id", "group_id", db.table("groups"))
        assert node.strategy == "probe"
        assert [r["id"] for r in node.rows()] == [1, 2, 3, 4]

    def test_scan_strategy_when_link_is_smaller(self):
        db = self.make_linked(n_users=50)
        db.insert("memberships", user_id=7, group_id=2)
        source = db.table("users")
        local = build_plan(source, QuerySpec())  # all 50 users
        node = SemiJoin(local, "id", db.table("memberships"),
                        "user_id", "group_id", db.table("groups"))
        assert node.strategy == "scan"
        assert [r["id"] for r in node.rows()] == [2]


class TestDurability:
    def open_db(self, tmp_path):
        return Database.open(tmp_path / "store", wal_sync="off")

    def seed(self, db):
        db.create_table(TableSchema(
            "items",
            columns=(Column("id", int), Column("name", str)),
        ))
        db.table("items").create_sorted_index("name")
        for name in NAMES:
            db.insert("items", name=name)

    def assert_index_alive(self, db):
        items = db.table("items")
        assert items.has_sorted_index("name")
        assert items.indexes() == {"name": "sorted"}
        q = query(db, "items").where_range("name", "b", "e")
        assert isinstance(unwrap(q.plan()), IndexRange)
        assert sorted(r["name"] for r in q.all()) \
            == ["banana", "blueberry", "cherry", "date"]
        # ...and the rebuilt index keeps maintaining itself.
        db.insert("items", name="damson")
        assert query(db, "items").where_range("name", "b", "e").count() == 5

    def test_sorted_index_survives_wal_replay(self, tmp_path):
        self.seed(self.open_db(tmp_path))
        self.assert_index_alive(self.open_db(tmp_path))

    def test_sorted_index_survives_checkpoint(self, tmp_path):
        db = self.open_db(tmp_path)
        self.seed(db)
        db.checkpoint()
        self.assert_index_alive(self.open_db(tmp_path))

    def test_sorted_index_ships_to_replica(self):
        primary = Database("primary")
        replica = Database("replica")
        primary.add_commit_listener(replica.apply_frame)
        self.seed(primary)
        primary.delete("items", 1)
        items = replica.table("items")
        assert items.has_sorted_index("name")
        q = query(replica, "items").where_range("name", "a", "c")
        assert isinstance(unwrap(q.plan()), IndexRange)
        assert sorted(r["name"] for r in q.all()) \
            == ["apricot", "banana", "blueberry"]

    def test_snapshot_source_plans_like_live(self):
        db = make_db()
        live = query(db, "items").where_range("name", "b", "e").all()
        with db.pinned():
            node = query(db, "items").where_range("name", "b", "e").plan()
            assert isinstance(unwrap(node), IndexRange)
            pinned = query(db, "items").where_range("name", "b", "e").all()
            db_state = query(db, "items").count()
        assert pinned == live
        assert db_state == 10


class TestExplain:
    def test_explain_reports_est_and_actual(self):
        db = make_db()
        report = query(db, "items").filter(group="even").explain()
        assert report["table"] == "items"
        assert report["summary"].startswith("index_eq(")
        assert report["rows"] == 5
        assert report["est_rows"] == 5.0
        tree = report["plan"]
        assert tree["node"] == "index_eq"
        assert tree["actual_rows"] == 5
        text = render_plan(tree)
        assert "index_eq" in text and "est=5" in text

    def test_explain_agrees_with_trace_span_plan(self):
        db = make_db()
        tracer = Tracer(TraceStore(), mode=MODE_ALL, slow_ms=1e9)
        with tracer.trace("test") as root:
            report = (query(db, "items").where_range("name", "b", "e")
                      .order_by("name").explain())
        record = tracer.store.get(root.trace_id)
        spans = [s for s in record.root.walk() if s.name == "db.query"]
        assert len(spans) == 1
        assert spans[0].attributes["plan"] == report["summary"]
        assert spans[0].attributes["rows"] == report["rows"]
        assert spans[0].attributes["est_rows"] == report["est_rows"]

    def test_all_surfaces_same_plan_summary_on_span(self):
        db = make_db()
        q = query(db, "items").filter(group="odd").order_by("score")
        expected = q.plan().summary()
        tracer = Tracer(TraceStore(), mode=MODE_ALL, slow_ms=1e9)
        with tracer.trace("test") as root:
            rows = q.all()
        record = tracer.store.get(root.trace_id)
        spans = [s for s in record.root.walk() if s.name == "db.query"]
        assert spans[0].attributes["plan"] == expected
        assert spans[0].attributes["rows"] == len(rows)
