"""Table storage: inserts, updates, deletes, indexes, uniqueness."""

import pytest

from repro.db import Column, TableSchema
from repro.db.errors import RowNotFound, SchemaError, UniqueViolation
from repro.db.table import Table


def make_table(**kwargs) -> Table:
    schema = TableSchema(
        "things",
        columns=(
            Column("id", int),
            Column("name", str),
            Column("group", str, default="a"),
            Column("note", str, nullable=True, default=None),
        ),
        unique=(("name",),),
        **kwargs,
    )
    return Table(schema)


class TestInsert:
    def test_auto_increment_ids(self):
        t = make_table()
        r1 = t.insert(name="x")
        r2 = t.insert(name="y")
        assert (r1["id"], r2["id"]) == (1, 2)

    def test_explicit_id_respected_and_sequence_advances(self):
        t = make_table()
        t.insert(id=10, name="x")
        r = t.insert(name="y")
        assert r["id"] == 11

    def test_duplicate_pk_rejected(self):
        t = make_table()
        t.insert(id=1, name="x")
        with pytest.raises(UniqueViolation):
            t.insert(id=1, name="y")

    def test_unique_constraint_enforced(self):
        t = make_table()
        t.insert(name="x")
        with pytest.raises(UniqueViolation):
            t.insert(name="x")

    def test_defaults_applied(self):
        t = make_table()
        row = t.insert(name="x")
        assert row["group"] == "a"
        assert row["note"] is None

    def test_unknown_column_rejected(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.insert(name="x", bogus=1)

    def test_failed_insert_leaves_no_trace(self):
        t = make_table()
        t.insert(name="x")
        with pytest.raises(UniqueViolation):
            t.insert(name="x")
        assert len(t) == 1
        # the unique index must not have been corrupted
        t.insert(name="y")
        assert len(t) == 2


class TestUpdate:
    def test_update_changes_columns(self):
        t = make_table()
        row = t.insert(name="x")
        updated = t.update(row["id"], note="hello")
        assert updated["note"] == "hello"
        assert t.get(row["id"])["note"] == "hello"

    def test_update_missing_row(self):
        t = make_table()
        with pytest.raises(RowNotFound):
            t.update(99, note="x")

    def test_update_cannot_touch_pk(self):
        t = make_table()
        row = t.insert(name="x")
        with pytest.raises(Exception):
            t.update(row["id"], id=42)

    def test_update_unique_collision(self):
        t = make_table()
        t.insert(name="x")
        row = t.insert(name="y")
        with pytest.raises(UniqueViolation):
            t.update(row["id"], name="x")

    def test_update_to_same_unique_value_allowed(self):
        t = make_table()
        row = t.insert(name="x")
        t.update(row["id"], name="x")  # no-op rename onto itself

    def test_unique_index_follows_rename(self):
        t = make_table()
        row = t.insert(name="x")
        t.update(row["id"], name="z")
        t.insert(name="x")  # old name is free again


class TestDelete:
    def test_delete_removes_row(self):
        t = make_table()
        row = t.insert(name="x")
        t.delete(row["id"])
        assert len(t) == 0
        with pytest.raises(RowNotFound):
            t.get(row["id"])

    def test_delete_missing_row(self):
        t = make_table()
        with pytest.raises(RowNotFound):
            t.delete(1)

    def test_delete_frees_unique_value(self):
        t = make_table()
        row = t.insert(name="x")
        t.delete(row["id"])
        t.insert(name="x")


class TestFindAndIndexes:
    def test_find_all(self):
        t = make_table()
        t.insert(name="x")
        t.insert(name="y", group="b")
        assert len(t.find()) == 2

    def test_find_equality(self):
        t = make_table()
        t.insert(name="x")
        t.insert(name="y", group="b")
        assert [r["name"] for r in t.find(group="b")] == ["y"]

    def test_find_conjunction(self):
        t = make_table()
        t.insert(name="x", group="b")
        t.insert(name="y", group="b")
        rows = t.find(group="b", name="y")
        assert len(rows) == 1

    def test_find_unknown_column(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.find(bogus=1)

    def test_indexed_find_matches_scan(self):
        t = make_table()
        for i in range(20):
            t.insert(name=f"n{i}", group="g" + str(i % 3))
        expected = sorted(r["id"] for r in t.find(group="g1"))
        t.create_index("group")
        actual = sorted(r["id"] for r in t.find(group="g1"))
        assert actual == expected

    def test_index_maintained_across_mutation(self):
        t = make_table()
        t.create_index("group")
        row = t.insert(name="x", group="g1")
        t.update(row["id"], group="g2")
        assert t.find(group="g1") == []
        assert [r["id"] for r in t.find(group="g2")] == [row["id"]]
        t.delete(row["id"])
        assert t.find(group="g2") == []

    def test_find_one_and_count(self):
        t = make_table()
        t.insert(name="x")
        assert t.find_one(name="x")["id"] == 1
        assert t.find_one(name="nope") is None
        assert t.count() == 1
        assert t.count(name="x") == 1
        assert t.count(name="nope") == 0

    def test_rows_returned_are_copies(self):
        t = make_table()
        row = t.insert(name="x")
        row["name"] = "mutated"
        assert t.get(row["id"])["name"] == "x"

    def test_column_values(self):
        t = make_table()
        t.insert(name="x")
        t.insert(name="y")
        assert sorted(t.column_values("name")) == ["x", "y"]

    def test_iteration_and_contains(self):
        t = make_table()
        r = t.insert(name="x")
        assert [row["name"] for row in t] == ["x"]
        assert r["id"] in t
        assert 999 not in t
