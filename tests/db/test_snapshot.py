"""MVCC snapshots: lock-free pinned reads over immutable versions."""

import threading

import pytest

from repro.db import (
    Column,
    Database,
    TableSchema,
    current_pin,
    database_to_dict,
    restore_database,
)
from repro.db.errors import RowNotFound
from repro.db.snapshot import TableSnapshot

WAIT = 10.0


def make_db() -> Database:
    db = Database("snaptest")
    db.create_table(TableSchema(
        "items",
        columns=(
            Column("id", int),
            Column("name", str),
            Column("group", str, default=""),
        ),
        unique=(("name",),),
    ))
    return db


class TestPinning:
    def test_pin_freezes_reads_across_commits(self):
        db = make_db()
        db.insert("items", name="a")
        with db.pinned() as snap:
            assert snap is not None
            db.insert("items", name="b")  # commits while we are pinned
            # The pinned scope keeps serving the version it captured...
            assert db.table("items").count() == 1
            assert db.version == snap.version
        # ...and leaving the scope reveals the newer committed version.
        assert db.table("items").count() == 2

    def test_pin_is_per_context_not_global(self):
        db = make_db()
        db.insert("items", name="a")
        inside = threading.Event()
        release = threading.Event()
        observed = {}

        def pinned_reader():
            with db.pinned():
                inside.set()
                assert release.wait(WAIT)
                observed["pinned"] = db.table("items").count()

        t = threading.Thread(target=pinned_reader)
        t.start()
        assert inside.wait(WAIT)
        db.insert("items", name="b")
        # An unpinned thread sees live state immediately.
        assert db.table("items").count() == 2
        release.set()
        t.join(WAIT)
        assert observed["pinned"] == 1

    def test_nested_pin_reuses_the_outer_pin(self):
        db = make_db()
        db.insert("items", name="a")
        with db.pinned() as outer:
            db.insert("items", name="b")
            with db.pinned() as inner:
                assert inner is outer
                assert db.table("items").count() == 1

    def test_writers_read_their_own_uncommitted_state(self):
        # Under the write lock a pin is a no-op: read-your-writes must
        # hold inside transactions.
        db = make_db()
        db.insert("items", name="a")
        with db.transaction():
            db.insert("items", name="b")
            with db.pinned() as snap:
                assert snap is None
                assert db.table("items").count() == 2

    def test_pin_does_not_touch_the_lock(self):
        db = make_db()
        db.insert("items", name="a")
        acquires = []
        original = db.lock.acquire_read

        def counting_acquire():
            acquires.append(1)
            original()

        db.lock.acquire_read = counting_acquire
        try:
            with db.pinned():
                db.table("items").get(1)
                db.table("items").find(name="a")
                assert db.version >= 1
        finally:
            del db.lock.acquire_read
        assert acquires == []

    def test_current_pin_resets_on_exit(self):
        db = make_db()
        assert current_pin() is None
        with db.pinned():
            assert current_pin() is not None
        assert current_pin() is None


class TestSnapshotReads:
    def test_read_api_matches_live_table(self):
        db = make_db()
        db.insert("items", name="a", group="g1")
        db.insert("items", name="b", group="g1")
        db.insert("items", name="c", group="g2")
        db.table("items").create_index("group")
        db.delete("items", 2)
        with db.pinned():
            t = db.table("items")
            assert len(t) == 2
            assert t.count(group="g1") == 1
            assert t.get(1)["name"] == "a"
            assert t.get_or_none(2) is None
            with pytest.raises(RowNotFound):
                t.get(2)
            assert t.find_one(name="c")["group"] == "g2"
            assert sorted(t.pks()) == [1, 3]
            assert sorted(t.column_values("name")) == ["a", "c"]
            assert 1 in t and 2 not in t
            assert {row["name"] for row in t} == {"a", "c"}

    def test_snapshot_rows_are_private_copies(self):
        db = make_db()
        db.insert("items", name="a")
        with db.pinned():
            row = db.table("items").get(1)
            row["name"] = "mutated"
            assert db.table("items").get(1)["name"] == "a"

    def test_dropped_table_still_readable_through_pin(self):
        db = make_db()
        db.insert("items", name="a")
        with db.pinned():
            db.drop_table("items")
            assert db.table("items").count() == 1
        assert "items" not in db


class TestDeltaConsolidation:
    def test_many_small_commits_consolidate(self):
        db = make_db()
        for i in range(300):
            db.insert("items", name=f"n{i}")
        snap = db.snapshot().table("items")
        assert isinstance(snap, TableSnapshot)
        # The overlay must stay bounded relative to the base — unbounded
        # delta chains would make every read O(history).
        assert len(snap._delta) <= max(64, len(snap._base) // 4)
        assert len(snap) == 300

    def test_interleaved_updates_and_deletes_stay_consistent(self):
        db = make_db()
        for i in range(50):
            db.insert("items", name=f"n{i}")
        for i in range(1, 51, 2):
            db.update("items", i, group="odd")
        for i in range(2, 51, 10):
            db.delete("items", i)
        live = {r["name"]: r["group"] for r in db._tables["items"]}
        snap = {r["name"]: r["group"] for r in db.snapshot().table("items")}
        assert snap == live


class TestSerialization:
    def test_database_roundtrip_is_exact(self):
        db = make_db()
        db.insert("items", name="a", group="g1")
        db.insert("items", name="b", group="g2")
        db.table("items").create_index("group")
        db.delete("items", 1)
        restored = restore_database(database_to_dict(db))
        assert restored.version == db.version
        assert restored.table_versions() == db.table_versions()
        assert restored.table("items").find(group="g2") == \
            db.table("items").find(group="g2")
        assert restored.table("items").has_index("group")
        # The id sequence survives: the next insert does not collide.
        row = restored.insert("items", name="c")
        assert row["id"] == 3

    def test_unsupported_format_rejected(self):
        with pytest.raises(ValueError):
            restore_database({"format": 99, "tables": []})
