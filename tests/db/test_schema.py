"""Column/TableSchema validation behaviour."""

import pytest

from repro.db import Column, ForeignKey, TableSchema
from repro.db.errors import NotNullViolation, SchemaError


class TestColumn:
    def test_validate_accepts_matching_type(self):
        col = Column("n", int)
        assert col.validate(5) == 5

    def test_validate_rejects_wrong_type(self):
        col = Column("n", int)
        with pytest.raises(SchemaError):
            col.validate("five")

    def test_validate_rejects_bool_for_int(self):
        # bool is an int subclass; must not silently pass
        col = Column("n", int)
        with pytest.raises(SchemaError):
            col.validate(True)

    def test_nullable_accepts_none(self):
        col = Column("n", int, nullable=True)
        assert col.validate(None) is None

    def test_non_nullable_rejects_none(self):
        col = Column("n", int)
        with pytest.raises(NotNullViolation):
            col.validate(None)

    def test_object_type_accepts_anything(self):
        col = Column("x", object)
        assert col.validate([1, 2]) == [1, 2]

    def test_default_value(self):
        col = Column("s", str, default="hi")
        assert col.has_default()
        assert col.resolve_default() == "hi"

    def test_callable_default(self):
        col = Column("s", str, default=lambda: "generated")
        assert col.resolve_default() == "generated"

    def test_no_default(self):
        assert not Column("s", str).has_default()


class TestTableSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", columns=(Column("a", int), Column("a", str)))

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema("t", columns=(Column("a", int),), primary_key="id")

    def test_unique_references_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                columns=(Column("id", int),),
                unique=(("missing",),),
            )

    def test_fk_column_must_exist(self):
        with pytest.raises(SchemaError):
            TableSchema(
                "t",
                columns=(Column("id", int),),
                foreign_keys=(ForeignKey("missing", "other"),),
            )

    def test_column_lookup(self):
        schema = TableSchema("t", columns=(Column("id", int), Column("x", str)))
        assert schema.column("x").type is str
        with pytest.raises(SchemaError):
            schema.column("nope")
        assert schema.has_column("id")
        assert not schema.has_column("nope")

    def test_column_names_order(self):
        schema = TableSchema("t", columns=(Column("id", int), Column("b", str)))
        assert schema.column_names() == ["id", "b"]


class TestForeignKey:
    def test_valid_on_delete_modes(self):
        ForeignKey("x", "t", on_delete="restrict")
        ForeignKey("x", "t", on_delete="cascade")

    def test_invalid_on_delete_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey("x", "t", on_delete="set_null")
