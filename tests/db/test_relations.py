"""ManyToMany link-table behaviour."""

import pytest

from repro.db import Column, Database, ManyToMany, TableSchema


@pytest.fixture()
def db():
    db = Database()
    db.create_table(TableSchema("posts", columns=(Column("id", int), Column("t", str, default="")),))
    db.create_table(TableSchema("tags", columns=(Column("id", int), Column("n", str, default="")),))
    return db


@pytest.fixture()
def links(db):
    return ManyToMany(db, "post_tags", "posts", "tags")


def add_pair(db):
    p = db.insert("posts", t="p")
    t = db.insert("tags", n="t")
    return p["id"], t["id"]


class TestAddRemove:
    def test_add_links_pair(self, db, links):
        pid, tid = add_pair(db)
        links.add(pid, tid)
        assert links.has(pid, tid)
        assert links.right_of(pid) == [tid]
        assert links.left_of(tid) == [pid]

    def test_add_is_idempotent(self, db, links):
        pid, tid = add_pair(db)
        first = links.add(pid, tid)
        second = links.add(pid, tid)
        assert first["id"] == second["id"]
        assert len(links) == 1

    def test_add_requires_existing_endpoints(self, db, links):
        from repro.db.errors import ForeignKeyError
        with pytest.raises(ForeignKeyError):
            links.add(1, 999)

    def test_remove(self, db, links):
        pid, tid = add_pair(db)
        links.add(pid, tid)
        assert links.remove(pid, tid) is True
        assert not links.has(pid, tid)
        assert links.remove(pid, tid) is False

    def test_clear_left(self, db, links):
        pid = db.insert("posts")["id"]
        tids = [db.insert("tags")["id"] for _ in range(3)]
        for tid in tids:
            links.add(pid, tid)
        assert links.clear_left(pid) == 3
        assert links.right_of(pid) == []


class TestCascade:
    def test_deleting_left_endpoint_cascades(self, db, links):
        pid, tid = add_pair(db)
        links.add(pid, tid)
        db.delete("posts", pid)
        assert len(links) == 0
        # the tag survives
        assert len(db.table("tags")) == 1

    def test_deleting_right_endpoint_cascades(self, db, links):
        pid, tid = add_pair(db)
        links.add(pid, tid)
        db.delete("tags", tid)
        assert len(links) == 0
        assert len(db.table("posts")) == 1


class TestExtras:
    def test_extra_columns_stored(self, db):
        links = ManyToMany(
            db, "weighted", "posts", "tags",
            extra_columns=(Column("weight", int, default=0),),
        )
        pid, tid = add_pair(db)
        links.add(pid, tid, weight=5)
        assert links.links_of(pid)[0]["weight"] == 5

    def test_pairs(self, db, links):
        pid, tid = add_pair(db)
        pid2 = db.insert("posts")["id"]
        links.add(pid, tid)
        links.add(pid2, tid)
        assert sorted(links.pairs()) == [(pid, tid), (pid2, tid)]
