"""Fault-injection suite for the durable storage path.

Where ``test_recovery_property`` truncates *copies* of a finished WAL,
this suite kills the **live writer**: a byte-budgeted file proxy tears a
real ``write(2)`` mid-record, the workload dies with ``CrashError``,
and recovery must restore exactly the frames whose records fully
reached disk — at every frame boundary and at every tear position
inside the fatal record.  It also covers the failure modes around the
WAL proper: fsync raising at the durability barrier, a checkpoint
crashing before/at its atomic publish, and the degenerate torn-magic-
header file.
"""

import random

import pytest

from repro.db import Column, Database, ForeignKey, TableSchema, database_to_dict
from repro.db.wal import MAGIC, encode_record, read_wal
from tests.faults import (
    CrashError,
    crash_wal_writes,
    failing_fsync,
    failing_replace,
    tear,
)


def _schema():
    return [
        TableSchema(
            "materials",
            columns=(
                Column("id", int),
                Column("title", str),
                Column("collection", str, default=""),
            ),
            unique=(("title",),),
        ),
        TableSchema(
            "tags", columns=(Column("id", int), Column("name", str)),
            unique=(("name",),),
        ),
        TableSchema(
            "material_tags",
            columns=(
                Column("id", int),
                Column("materials_id", int),
                Column("tags_id", int),
            ),
            foreign_keys=(
                ForeignKey("materials_id", "materials", on_delete="cascade"),
                ForeignKey("tags_id", "tags", on_delete="cascade"),
            ),
        ),
    ]


def _workload(db, rng: random.Random, commit):
    """A mixed write stream: DML, DDL, transactions, cascades.  Calls
    ``commit`` after every committed frame (oracle capture point)."""
    for schema in _schema():
        commit(lambda s=schema: db.create_table(s))
    for i in range(6):
        commit(lambda i=i: db.insert(
            "materials", title=f"m-{i}", collection=rng.choice("ab"),
        ))
    commit(lambda: db.table("materials").create_index("collection"))
    for i in range(4):
        commit(lambda i=i: db.insert("tags", name=f"t-{i}"))

    def link_batch():
        with db.transaction():
            for t in range(1, 5):
                db.insert("material_tags", materials_id=1, tags_id=t)

    commit(link_batch)
    commit(lambda: db.update("materials", 2, collection="renamed"))
    commit(lambda: db.delete("materials", 1))  # cascades into links

    def mixed_tx():
        with db.transaction():
            row = db.insert("materials", title="tx-made")
            db.insert("material_tags", materials_id=row["id"], tags_id=2)
            db.delete("tags", 4)

    commit(mixed_tx)


@pytest.fixture(scope="module")
def oracle_run(tmp_path_factory):
    """One uninterrupted run: per-frame oracle dumps + record sizes.

    ``record_sizes[i]`` is the encoded byte length of frame ``i``'s WAL
    record; ``oracle[i]`` is the engine dump after ``i`` frames.
    """
    store = tmp_path_factory.mktemp("oracle") / "store"
    db = Database.open(store, wal_sync="off")
    oracle = [database_to_dict(db)]
    rng = random.Random(0x5EED)

    def commit(fn):
        fn()
        oracle.append(database_to_dict(db))

    _workload(db, rng, commit)
    db.close()
    frames, _, torn = read_wal(store / "wal.log")
    assert not torn and len(frames) == len(oracle) - 1
    record_sizes = [len(encode_record(f)) for f in frames]
    return oracle, record_sizes


class TestCrashAtEveryFrameBoundary:
    def test_prefix_consistent_recovery(self, oracle_run, tmp_path):
        """Kill the live writer at every frame boundary (budget = exact
        bytes for k whole records): recovery must land on oracle[k]."""
        oracle, record_sizes = oracle_run
        for k in range(len(record_sizes)):
            budget = sum(record_sizes[:k])
            store = tmp_path / f"crash-{k}"
            db = Database.open(store, wal_sync="off")
            crash_wal_writes(db, budget)
            rng = random.Random(0x5EED)
            with pytest.raises(CrashError):
                _workload(db, rng, lambda fn: fn())
            # The "process" is dead; only the files matter now.
            recovered = Database.open(store, wal_sync="off")
            report = recovered.recovery_report
            assert report["frames_replayed"] == k
            assert not report["torn"], (
                f"boundary crash at frame {k} must not leave a tear"
            )
            assert database_to_dict(recovered) == oracle[k], (
                f"state diverged after crash at frame boundary {k}"
            )
            recovered.close()

    def test_mid_record_tears_recover_the_prefix(self, oracle_run, tmp_path):
        """Tear *inside* a record (every offset of a short record, a
        seeded sample of a long one): the torn frame never applies, the
        prefix always does, and the tail is truncated on reopen."""
        oracle, record_sizes = oracle_run
        rng = random.Random(0xBAD5EED)
        cases = []
        for k, size in enumerate(record_sizes):
            offsets = range(1, size) if size <= 24 else sorted(
                rng.sample(range(1, size), 12)
            )
            cases.extend((k, off) for off in offsets)
        assert len(cases) >= 100
        for k, off in cases:
            budget = sum(record_sizes[:k]) + off
            store = tmp_path / f"tear-{k}-{off}"
            db = Database.open(store, wal_sync="off")
            crash_wal_writes(db, budget)
            with pytest.raises(CrashError):
                _workload(db, random.Random(0x5EED), lambda fn: fn())
            recovered = Database.open(store, wal_sync="off")
            report = recovered.recovery_report
            assert report["frames_replayed"] == k, (k, off)
            assert report["torn"] and report["truncated_bytes"] == off
            assert database_to_dict(recovered) == oracle[k], (k, off)
            recovered.close()
            # Recovery converges: the second open sees a clean log.
            again = Database.open(store, wal_sync="off")
            assert not again.recovery_report["torn"]
            assert database_to_dict(again) == oracle[k]
            again.close()


class TestFsyncFailure:
    def test_fsync_error_surfaces_and_log_stays_readable(self, tmp_path):
        db = Database.open(tmp_path / "store", wal_sync="always")
        db.create_table(_schema()[0])
        db.insert("materials", title="before")
        committed = database_to_dict(db)
        with failing_fsync():
            with pytest.raises(OSError):
                db.insert("materials", title="during")
        # The barrier failed *after* the bytes were written: recovery
        # may keep that frame or not, but every frame before it must
        # survive and the log must parse cleanly.
        recovered = Database.open(tmp_path / "store", wal_sync="off")
        state = database_to_dict(recovered)
        titles = {r["title"] for r in recovered.table("materials")}
        assert "before" in titles
        assert state["version"] >= committed["version"]
        recovered.close()
        db.close()


class TestCheckpointCrash:
    def test_replace_failure_keeps_old_snapshot_and_wal(self, tmp_path):
        db = Database.open(tmp_path / "store", wal_sync="off")
        db.create_table(_schema()[0])
        db.insert("materials", title="a")
        db.checkpoint()
        db.insert("materials", title="b")
        before = database_to_dict(db)
        with failing_replace():
            with pytest.raises(OSError):
                db.checkpoint()
        db.close()
        # Crash before the atomic publish: old snapshot + full WAL still
        # reconstruct everything.
        recovered = Database.open(tmp_path / "store", wal_sync="off")
        assert database_to_dict(recovered) == before
        recovered.close()

    def test_snapshot_write_fsync_failure_keeps_wal_authoritative(
        self, tmp_path
    ):
        db = Database.open(tmp_path / "store", wal_sync="off")
        db.create_table(_schema()[0])
        db.insert("materials", title="a")
        before = database_to_dict(db)
        with failing_fsync():
            with pytest.raises(OSError):
                db.checkpoint()
        db.close()
        recovered = Database.open(tmp_path / "store", wal_sync="off")
        assert database_to_dict(recovered) == before
        recovered.close()


class TestTornMagicHeader:
    """A crash during the very first write tears the 8-byte header."""

    @pytest.mark.parametrize("keep", range(8))
    def test_every_header_prefix_recovers_empty(self, tmp_path, keep):
        store = tmp_path / "store"
        db = Database.open(store, wal_sync="off")
        db.create_table(_schema()[1])
        db.insert("tags", name="doomed")
        db.close()
        tear(store / "wal.log", keep)

        frames, valid, torn = read_wal(store / "wal.log")
        assert (frames, valid) == ([], len(MAGIC))
        # keep == 0 reads as a missing/empty log, not a tear.
        assert torn == (keep > 0)

        recovered = Database.open(store, wal_sync="off")
        assert recovered.recovery_report["frames_replayed"] == 0
        assert recovered.recovery_report["truncated_bytes"] >= 0
        assert "tags" not in recovered
        # The writer healed the header: committing now must produce a
        # fully valid log (no zero-extension garbage).
        recovered.create_table(_schema()[1])
        recovered.insert("tags", name="alive")
        recovered.close()
        frames, _, torn = read_wal(store / "wal.log")
        assert not torn and len(frames) == 2

    def test_foreign_garbage_still_raises(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTWAL\x00\x00following bytes")
        with pytest.raises(ValueError, match="bad magic"):
            read_wal(path)
        path.write_bytes(b"XYZ")  # short AND not a MAGIC prefix
        with pytest.raises(ValueError, match="bad magic"):
            read_wal(path)
