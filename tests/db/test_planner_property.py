"""Property test: planned execution ≡ the naive full-scan interpreter.

For randomized schemas (index configurations), row sets, mutation
histories and query pipelines, ``Query.all()`` (planned) must return
exactly what ``Query._run_naive()`` (scan + filter + canonical sort)
returns — as an ordered list when the pipeline orders, as a row *set*
otherwise.  The same must hold inside transactions, on pinned MVCC
snapshots, and on a replica fed by shipped WAL frames.
"""

from hypothesis import given, settings, strategies as st

from repro.db import Column, Database, TableSchema, query

GROUPS = ["x", "y", "z"]

rows_st = st.lists(
    st.tuples(
        st.text(alphabet="abc", min_size=0, max_size=3),   # name
        st.sampled_from(GROUPS),                           # group
        st.one_of(st.none(), st.integers(0, 5)),           # score
    ),
    max_size=25,
)

# Which secondary indexes exist — the planner must be correct for every
# combination, including none at all (pure full-scan fallback).
indexes_st = st.sets(st.sampled_from([
    ("hash", "group"), ("hash", "name"), ("hash", "score"),
    ("sorted", "name"), ("sorted", "score"), ("sorted", "group"),
]))

PREDICATES = {
    "even_score": lambda r: r["score"] is not None and r["score"] % 2 == 0,
    "short_name": lambda r: len(r["name"]) <= 1,
}


@st.composite
def pipelines(draw):
    """A random query pipeline, as declarative (op, *args) steps."""
    ops = []
    if draw(st.booleans()):
        ops.append(("eq", "group", draw(st.sampled_from(GROUPS + ["w"]))))
    if draw(st.booleans()):
        column = draw(st.sampled_from(["name", "score", "id"]))
        if column == "name":
            value = draw(st.text(alphabet="abc", max_size=3))
        else:
            value = draw(st.one_of(st.none(), st.integers(0, 6))) \
                if column == "score" else draw(st.integers(0, 30))
        ops.append(("eq", column, value))
    if draw(st.booleans()):
        low = draw(st.one_of(st.none(), st.integers(0, 5)))
        high = draw(st.one_of(st.none(), st.integers(0, 5)))
        ops.append(("range", "score", low, high,
                    draw(st.booleans()), draw(st.booleans())))
    if draw(st.booleans()):
        ops.append(("prefix", "name",
                    draw(st.sampled_from(["", "a", "ab", "b", "ca", "d"]))))
    if draw(st.booleans()):
        column = draw(st.sampled_from(["group", "score"]))
        values = draw(st.lists(
            st.sampled_from(GROUPS) if column == "group"
            else st.one_of(st.none(), st.integers(0, 5)),
            max_size=3,
        ))
        ops.append(("in", column, values))
    if draw(st.booleans()):
        ops.append(("where", draw(st.sampled_from(sorted(PREDICATES)))))
    ordered = draw(st.booleans())
    if ordered:
        ops.append(("order", draw(st.sampled_from(["name", "score", "id"])),
                    draw(st.booleans())))
        # Slicing without an order is unspecified; only pair it with one.
        if draw(st.booleans()):
            ops.append(("offset", draw(st.integers(0, 5))))
        if draw(st.booleans()):
            ops.append(("limit", draw(st.integers(0, 6))))
    return ops


@st.composite
def mutations(draw, n_rows):
    """Post-insert deletes/updates, exercising index maintenance."""
    steps = []
    for pk in draw(st.lists(st.integers(1, max(n_rows, 1)), max_size=4)):
        if draw(st.booleans()):
            steps.append(("delete", pk))
        else:
            steps.append(("update", pk, {
                "score": draw(st.one_of(st.none(), st.integers(0, 5))),
                "name": draw(st.text(alphabet="abc", max_size=3)),
            }))
    return steps


def build_db(rows, indexes):
    db = Database("prop")
    db.create_table(TableSchema(
        "items",
        columns=(
            Column("id", int),
            Column("name", str),
            Column("group", str),
            Column("score", int, nullable=True),
        ),
    ))
    items = db.table("items")
    for kind, column in indexes:
        if kind == "hash":
            items.create_index(column)
        else:
            items.create_sorted_index(column)
    for name, group, score in rows:
        db.insert("items", name=name, group=group, score=score)
    return db


def apply_mutations(db, steps):
    from repro.db.errors import RowNotFound
    for step in steps:
        try:
            if step[0] == "delete":
                db.delete("items", step[1])
            else:
                db.update("items", step[1], **step[2])
        except (RowNotFound, KeyError):
            pass  # mutating an already-deleted pk is fine to skip


def build_query(db, ops):
    q = query(db, "items")
    ordered = False
    for op in ops:
        if op[0] == "eq":
            q = q.filter(**{op[1]: op[2]})
        elif op[0] == "range":
            q = q.where_range(op[1], op[2], op[3],
                              include_low=op[4], include_high=op[5])
        elif op[0] == "prefix":
            q = q.where_prefix(op[1], op[2])
        elif op[0] == "in":
            q = q.where_in(op[1], op[2])
        elif op[0] == "where":
            q = q.where(PREDICATES[op[1]])
        elif op[0] == "order":
            q = q.order_by(op[1], op[2])
            ordered = True
        elif op[0] == "offset":
            q = q.offset(op[1])
        elif op[0] == "limit":
            q = q.limit(op[1])
    return q, ordered


def assert_equivalent(q, ordered):
    planned = q.all()
    naive = q._run_naive()
    if ordered:
        assert planned == naive
    else:
        key = lambda r: r["id"]
        assert sorted(planned, key=key) == sorted(naive, key=key)
    assert q.count() == len(naive)
    assert q.exists() == bool(naive)


@given(rows=rows_st, indexes=indexes_st, ops=pipelines(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_planned_matches_naive(rows, indexes, ops, data):
    db = build_db(rows, indexes)
    apply_mutations(db, data.draw(mutations(len(rows))))
    q, ordered = build_query(db, ops)
    assert_equivalent(q, ordered)


@given(rows=rows_st, indexes=indexes_st, ops=pipelines(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_planned_matches_naive_in_transaction_and_pin(
        rows, indexes, ops, data):
    db = build_db(rows, indexes)
    steps = data.draw(mutations(len(rows)))
    with db.pinned():
        # The pin observes one committed version through snapshots —
        # planned and naive must agree on *that* state too.
        pre_q, pre_ordered = build_query(db, ops)
        assert_equivalent(pre_q, pre_ordered)
    with db.transaction():
        apply_mutations(db, steps)
        # Inside the transaction, queries see its uncommitted writes.
        q, ordered = build_query(db, ops)
        assert_equivalent(q, ordered)
    # After commit the answer is unchanged (same state, fresh plan).
    q, ordered = build_query(db, ops)
    assert_equivalent(q, ordered)


@given(rows=rows_st, indexes=indexes_st, ops=pipelines(), data=st.data())
@settings(max_examples=30, deadline=None)
def test_replica_planned_matches_primary(rows, indexes, ops, data):
    primary = Database("primary")
    replica = Database("replica")
    primary.add_commit_listener(replica.apply_frame)
    db = primary
    # Re-run the schema/row setup through the listener-attached primary.
    db.create_table(TableSchema(
        "items",
        columns=(
            Column("id", int),
            Column("name", str),
            Column("group", str),
            Column("score", int, nullable=True),
        ),
    ))
    items = db.table("items")
    for kind, column in indexes:
        if kind == "hash":
            items.create_index(column)
        else:
            items.create_sorted_index(column)
    for name, group, score in rows:
        db.insert("items", name=name, group=group, score=score)
    apply_mutations(db, data.draw(mutations(len(rows))))
    q_primary, ordered = build_query(primary, ops)
    q_replica, _ = build_query(replica, ops)
    naive = q_primary._run_naive()
    planned = q_replica.all()
    if ordered:
        assert planned == naive
    else:
        key = lambda r: r["id"]
        assert sorted(planned, key=key) == sorted(naive, key=key)
    assert q_replica.count() == len(naive)
