"""RWLock semantics: shared readers, exclusive writers, reentrancy."""

import threading
import time

import pytest

from repro.db.locks import RWLock

WAIT = 5.0  # generous thread-sync timeout; tests fail fast on deadlock


class TestReentrancy:
    def test_read_inside_read(self):
        lock = RWLock()
        with lock.read():
            with lock.read():
                assert lock.read_held
        assert not lock.read_held

    def test_write_inside_write(self):
        lock = RWLock()
        with lock.write():
            with lock.write():
                assert lock.write_held
        assert not lock.write_held

    def test_read_inside_write(self):
        lock = RWLock()
        with lock.write():
            with lock.read():
                assert lock.read_held and lock.write_held

    def test_upgrade_is_rejected(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                lock.acquire_write()
        # The failed upgrade must not corrupt state: a writer can proceed.
        with lock.write():
            pass

    def test_unbalanced_release_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_over_release_after_balanced_use_raises(self):
        # A correct acquire/release pair must not leave residue that lets
        # a later unbalanced release slip through.
        lock = RWLock()
        with lock.read():
            pass
        with pytest.raises(RuntimeError):
            lock.release_read()
        with lock.write():
            pass
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_release_write_from_other_thread_raises(self):
        lock = RWLock()
        lock.acquire_write()
        caught: list[BaseException] = []

        def thief():
            try:
                lock.release_write()
            except RuntimeError as exc:
                caught.append(exc)

        t = threading.Thread(target=thief)
        t.start(); t.join(WAIT)
        assert len(caught) == 1
        lock.release_write()  # the owner can still release cleanly
        assert not lock.write_held

    def test_failed_upgrade_does_not_leak_waiting_state(self):
        # The rejected upgrade must not leave `_writers_waiting` residue
        # that would park future readers forever.
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                lock.acquire_write()
        done = threading.Event()

        def reader():
            with lock.read():
                done.set()

        t = threading.Thread(target=reader)
        t.start(); t.join(WAIT)
        assert done.is_set()


class TestSharingAndExclusion:
    def test_two_readers_hold_simultaneously(self):
        lock = RWLock()
        first_in = threading.Event()
        second_in = threading.Event()

        def reader(my_event, other_event):
            with lock.read():
                my_event.set()
                # Both readers must be inside at once for this to pass.
                assert other_event.wait(WAIT)

        a = threading.Thread(target=reader, args=(first_in, second_in))
        b = threading.Thread(target=reader, args=(second_in, first_in))
        a.start(); b.start()
        a.join(WAIT); b.join(WAIT)
        assert not a.is_alive() and not b.is_alive()

    def test_writer_excludes_reader(self):
        lock = RWLock()
        order = []
        writer_in = threading.Event()
        release_writer = threading.Event()

        def writer():
            with lock.write():
                writer_in.set()
                assert release_writer.wait(WAIT)
                order.append("writer-done")

        def reader():
            assert writer_in.wait(WAIT)
            with lock.read():
                order.append("reader-in")

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start(); r.start()
        assert writer_in.wait(WAIT)
        time.sleep(0.05)          # give the reader a chance to (wrongly) enter
        assert order == []        # reader is blocked behind the writer
        release_writer.set()
        w.join(WAIT); r.join(WAIT)
        assert order == ["writer-done", "reader-in"]

    def test_waiting_writer_blocks_new_readers(self):
        """Writer preference: under a stream of readers the writer gets in
        before readers that arrived after it."""
        lock = RWLock()
        reader_in = threading.Event()
        release_first_reader = threading.Event()
        order = []

        def first_reader():
            with lock.read():
                reader_in.set()
                assert release_first_reader.wait(WAIT)

        def writer():
            with lock.write():
                order.append("writer")

        def late_reader():
            with lock.read():
                order.append("late-reader")

        r1 = threading.Thread(target=first_reader)
        r1.start()
        assert reader_in.wait(WAIT)
        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)          # writer is now queued behind r1
        r2 = threading.Thread(target=late_reader)
        r2.start()
        time.sleep(0.05)
        release_first_reader.set()
        for t in (r1, w, r2):
            t.join(WAIT)
        assert order[0] == "writer"

    def test_writer_gets_in_under_constant_reader_stream(self):
        """Stronger writer-preference check: with several reader threads
        re-acquiring in a tight loop (the lock is never reader-idle for
        long), a writer that shows up still completes promptly."""
        lock = RWLock()
        stop = threading.Event()
        writer_done = threading.Event()
        reads_before = []
        reads_total = {"n": 0}
        counter_lock = threading.Lock()

        def reader():
            while not stop.is_set():
                with lock.read():
                    with counter_lock:
                        reads_total["n"] += 1

        def writer():
            time.sleep(0.05)  # let the reader stream saturate first
            with counter_lock:
                reads_before.append(reads_total["n"])
            with lock.write():
                writer_done.set()

        readers = [threading.Thread(target=reader) for _ in range(6)]
        w = threading.Thread(target=writer)
        for t in readers:
            t.start()
        w.start()
        got_in = writer_done.wait(WAIT)
        stop.set()
        w.join(WAIT)
        for t in readers:
            t.join(WAIT)
        assert got_in, "writer starved by the reader stream"
        # Sanity: the stream really was constant while the writer queued.
        assert reads_before and reads_before[0] > 0
        assert reads_total["n"] > reads_before[0]

    def test_concurrent_counter_mutation_is_exclusive(self):
        """A read-modify-write under the write lock never loses updates."""
        lock = RWLock()
        state = {"n": 0}

        def bump():
            for _ in range(2000):
                with lock.write():
                    state["n"] += 1

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        assert state["n"] == 8000
