"""Database-level behaviour: DDL, foreign keys, transactions."""

import pytest

from repro.db import Column, Database, ForeignKey, TableSchema
from repro.db.errors import (
    ForeignKeyError,
    SchemaError,
    TransactionError,
    UniqueViolation,
)


def make_db() -> Database:
    db = Database("test")
    db.create_table(TableSchema(
        "parents", columns=(Column("id", int), Column("name", str)),
    ))
    db.create_table(TableSchema(
        "children",
        columns=(
            Column("id", int),
            Column("parent_id", int),
            Column("label", str, default=""),
        ),
        foreign_keys=(ForeignKey("parent_id", "parents"),),
    ))
    db.create_table(TableSchema(
        "cascading",
        columns=(Column("id", int), Column("parent_id", int)),
        foreign_keys=(ForeignKey("parent_id", "parents", on_delete="cascade"),),
    ))
    return db


class TestDdl:
    def test_duplicate_table_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.create_table(TableSchema("parents", columns=(Column("id", int),)))

    def test_fk_to_unknown_table_rejected(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.create_table(TableSchema(
                "t",
                columns=(Column("id", int), Column("x_id", int)),
                foreign_keys=(ForeignKey("x_id", "missing"),),
            ))

    def test_drop_referenced_table_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.drop_table("parents")

    def test_drop_leaf_table(self):
        db = make_db()
        db.drop_table("children")
        assert "children" not in db

    def test_table_names_sorted(self):
        db = make_db()
        assert db.table_names() == ["cascading", "children", "parents"]

    def test_unknown_table_lookup(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.table("nope")


class TestForeignKeys:
    def test_insert_with_valid_fk(self):
        db = make_db()
        p = db.insert("parents", name="p")
        c = db.insert("children", parent_id=p["id"])
        assert c["parent_id"] == p["id"]

    def test_insert_with_dangling_fk_rejected(self):
        db = make_db()
        with pytest.raises(ForeignKeyError):
            db.insert("children", parent_id=99)

    def test_update_to_dangling_fk_rejected(self):
        db = make_db()
        p = db.insert("parents", name="p")
        c = db.insert("children", parent_id=p["id"])
        with pytest.raises(ForeignKeyError):
            db.update("children", c["id"], parent_id=12345)

    def test_restrict_delete_blocked(self):
        db = make_db()
        p = db.insert("parents", name="p")
        db.insert("children", parent_id=p["id"])
        with pytest.raises(ForeignKeyError):
            db.delete("parents", p["id"])

    def test_cascade_delete_propagates(self):
        db = make_db()
        p = db.insert("parents", name="p")
        db.insert("cascading", parent_id=p["id"])
        db.insert("cascading", parent_id=p["id"])
        db.delete("parents", p["id"])
        assert len(db.table("cascading")) == 0

    def test_delete_unreferenced_parent_ok(self):
        db = make_db()
        p = db.insert("parents", name="p")
        db.delete("parents", p["id"])
        assert len(db.table("parents")) == 0

    def test_null_fk_allowed_when_nullable(self):
        db = Database()
        db.create_table(TableSchema(
            "targets", columns=(Column("id", int),),
        ))
        db.create_table(TableSchema(
            "sources",
            columns=(Column("id", int), Column("t_id", int, nullable=True, default=None)),
            foreign_keys=(ForeignKey("t_id", "targets"),),
        ))
        row = db.insert("sources")
        assert row["t_id"] is None


class TestTransactions:
    def test_commit_keeps_changes(self):
        db = make_db()
        with db.transaction():
            db.insert("parents", name="p")
        assert len(db.table("parents")) == 1

    def test_rollback_on_exception(self):
        db = make_db()
        db.insert("parents", name="before")
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("parents", name="inside")
                raise RuntimeError("boom")
        names = db.table("parents").column_values("name")
        assert names == ["before"]

    def test_rollback_restores_indexes(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("parents", name="ghost")
                raise RuntimeError
        # unique index must not remember the ghost
        db.insert("parents", name="ghost")

    def test_nested_transactions_partial_rollback(self):
        db = make_db()
        with db.transaction():
            db.insert("parents", name="outer")
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.insert("parents", name="inner")
                    raise RuntimeError
            assert db.table("parents").column_values("name") == ["outer"]
        assert db.table("parents").column_values("name") == ["outer"]

    def test_id_sequence_rewinds_on_rollback(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("parents", name="x")
                raise RuntimeError
        row = db.insert("parents", name="y")
        assert row["id"] == 1

    def test_commit_without_begin(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db._commit()

    def test_rollback_without_begin(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db._rollback()

    def test_in_transaction_flag(self):
        db = make_db()
        assert not db.in_transaction
        with db.transaction():
            assert db.in_transaction
        assert not db.in_transaction

    def test_table_created_inside_rolled_back_transaction_vanishes(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.create_table(TableSchema("temp", columns=(Column("id", int),)))
                raise RuntimeError
        assert "temp" not in db


class TestStats:
    def test_stats_counts_rows(self):
        db = make_db()
        db.insert("parents", name="a")
        db.insert("parents", name="b")
        assert db.stats()["parents"] == 2
        assert db.stats()["children"] == 0
