"""Database-level behaviour: DDL, foreign keys, transactions."""

import pytest

from repro.db import Column, Database, ForeignKey, TableSchema
from repro.db.errors import (
    ForeignKeyError,
    SchemaError,
    TransactionError,
    UniqueViolation,
)


def make_db() -> Database:
    db = Database("test")
    db.create_table(TableSchema(
        "parents", columns=(Column("id", int), Column("name", str)),
    ))
    db.create_table(TableSchema(
        "children",
        columns=(
            Column("id", int),
            Column("parent_id", int),
            Column("label", str, default=""),
        ),
        foreign_keys=(ForeignKey("parent_id", "parents"),),
    ))
    db.create_table(TableSchema(
        "cascading",
        columns=(Column("id", int), Column("parent_id", int)),
        foreign_keys=(ForeignKey("parent_id", "parents", on_delete="cascade"),),
    ))
    return db


class TestDdl:
    def test_duplicate_table_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.create_table(TableSchema("parents", columns=(Column("id", int),)))

    def test_fk_to_unknown_table_rejected(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.create_table(TableSchema(
                "t",
                columns=(Column("id", int), Column("x_id", int)),
                foreign_keys=(ForeignKey("x_id", "missing"),),
            ))

    def test_drop_referenced_table_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.drop_table("parents")

    def test_drop_leaf_table(self):
        db = make_db()
        db.drop_table("children")
        assert "children" not in db

    def test_table_names_sorted(self):
        db = make_db()
        assert db.table_names() == ["cascading", "children", "parents"]

    def test_unknown_table_lookup(self):
        db = Database()
        with pytest.raises(SchemaError):
            db.table("nope")


class TestForeignKeys:
    def test_insert_with_valid_fk(self):
        db = make_db()
        p = db.insert("parents", name="p")
        c = db.insert("children", parent_id=p["id"])
        assert c["parent_id"] == p["id"]

    def test_insert_with_dangling_fk_rejected(self):
        db = make_db()
        with pytest.raises(ForeignKeyError):
            db.insert("children", parent_id=99)

    def test_update_to_dangling_fk_rejected(self):
        db = make_db()
        p = db.insert("parents", name="p")
        c = db.insert("children", parent_id=p["id"])
        with pytest.raises(ForeignKeyError):
            db.update("children", c["id"], parent_id=12345)

    def test_restrict_delete_blocked(self):
        db = make_db()
        p = db.insert("parents", name="p")
        db.insert("children", parent_id=p["id"])
        with pytest.raises(ForeignKeyError):
            db.delete("parents", p["id"])

    def test_cascade_delete_propagates(self):
        db = make_db()
        p = db.insert("parents", name="p")
        db.insert("cascading", parent_id=p["id"])
        db.insert("cascading", parent_id=p["id"])
        db.delete("parents", p["id"])
        assert len(db.table("cascading")) == 0

    def test_delete_unreferenced_parent_ok(self):
        db = make_db()
        p = db.insert("parents", name="p")
        db.delete("parents", p["id"])
        assert len(db.table("parents")) == 0

    def test_null_fk_allowed_when_nullable(self):
        db = Database()
        db.create_table(TableSchema(
            "targets", columns=(Column("id", int),),
        ))
        db.create_table(TableSchema(
            "sources",
            columns=(Column("id", int), Column("t_id", int, nullable=True, default=None)),
            foreign_keys=(ForeignKey("t_id", "targets"),),
        ))
        row = db.insert("sources")
        assert row["t_id"] is None


class TestTransactions:
    def test_commit_keeps_changes(self):
        db = make_db()
        with db.transaction():
            db.insert("parents", name="p")
        assert len(db.table("parents")) == 1

    def test_rollback_on_exception(self):
        db = make_db()
        db.insert("parents", name="before")
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("parents", name="inside")
                raise RuntimeError("boom")
        names = db.table("parents").column_values("name")
        assert names == ["before"]

    def test_rollback_restores_indexes(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("parents", name="ghost")
                raise RuntimeError
        # unique index must not remember the ghost
        db.insert("parents", name="ghost")

    def test_nested_transactions_partial_rollback(self):
        db = make_db()
        with db.transaction():
            db.insert("parents", name="outer")
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.insert("parents", name="inner")
                    raise RuntimeError
            assert db.table("parents").column_values("name") == ["outer"]
        assert db.table("parents").column_values("name") == ["outer"]

    def test_id_sequence_rewinds_on_rollback(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("parents", name="x")
                raise RuntimeError
        row = db.insert("parents", name="y")
        assert row["id"] == 1

    def test_commit_without_begin(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db._commit()

    def test_rollback_without_begin(self):
        db = make_db()
        with pytest.raises(TransactionError):
            db._rollback()

    def test_in_transaction_flag(self):
        db = make_db()
        assert not db.in_transaction
        with db.transaction():
            assert db.in_transaction
        assert not db.in_transaction

    def test_table_created_inside_rolled_back_transaction_vanishes(self):
        db = make_db()
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.create_table(TableSchema("temp", columns=(Column("id", int),)))
                raise RuntimeError
        assert "temp" not in db


class TestStats:
    def test_stats_counts_rows(self):
        db = make_db()
        db.insert("parents", name="a")
        db.insert("parents", name="b")
        assert db.stats()["parents"] == 2
        assert db.stats()["children"] == 0


class TestVersions:
    def test_new_database_starts_at_zero(self):
        db = make_db()
        assert db.version == 3  # one bump per created table
        assert set(db.table_versions()) == {"parents", "children", "cascading"}
        assert all(v == 0 for v in db.table_versions().values())

    def test_each_committed_mutation_bumps_exactly_once(self):
        db = make_db()
        v_db, v_tbl = db.version, db.table("parents").version
        pid = db.insert("parents", name="a")["id"]
        assert (db.version, db.table("parents").version) == (v_db + 1, v_tbl + 1)
        db.update("parents", pid, name="b")
        assert (db.version, db.table("parents").version) == (v_db + 2, v_tbl + 2)
        db.delete("parents", pid)
        assert (db.version, db.table("parents").version) == (v_db + 3, v_tbl + 3)

    def test_mutation_bumps_only_its_own_table(self):
        db = make_db()
        before = db.table("children").version
        db.insert("parents", name="a")
        assert db.table("children").version == before

    def test_cascade_delete_bumps_every_touched_table(self):
        db = make_db()
        pid = db.insert("parents", name="a")["id"]
        db.insert("cascading", parent_id=pid)
        v_parents = db.table("parents").version
        v_casc = db.table("cascading").version
        db.delete("parents", pid)
        assert db.table("parents").version == v_parents + 1
        assert db.table("cascading").version == v_casc + 1

    def test_rollback_restores_versions(self):
        db = make_db()
        db.insert("parents", name="keep")
        v_db, v_tbl = db.version, db.table("parents").version
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("parents", name="gone")
                db.insert("parents", name="gone too")
                assert db.version == v_db + 2
                raise RuntimeError
        assert db.version == v_db
        assert db.table("parents").version == v_tbl

    def test_commit_keeps_versions(self):
        db = make_db()
        v = db.version
        with db.transaction():
            db.insert("parents", name="a")
        assert db.version == v + 1

    def test_nested_commit_then_outer_rollback_restores(self):
        db = make_db()
        v = db.version
        with pytest.raises(RuntimeError):
            with db.transaction():
                with db.transaction():
                    db.insert("parents", name="inner")
                db.insert("parents", name="outer")
                raise RuntimeError
        assert db.version == v
        assert db.stats()["parents"] == 0

    def test_ddl_bumps_database_version(self):
        db = make_db()
        v = db.version
        db.create_table(TableSchema("extra", columns=(Column("id", int),)))
        assert db.version == v + 1
        db.drop_table("extra")
        assert db.version == v + 2

    def test_drop_table_inside_aborted_transaction_restores_table(self):
        """Regression: rollback used to KeyError after an in-tx drop,
        losing both the table and the pre-transaction state."""
        db = make_db()
        pid = db.insert("parents", name="a")["id"]
        v = db.version
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.drop_table("children")
                raise RuntimeError
        assert "children" in db
        assert db.version == v
        # The restored table is fully usable, FK wiring intact.
        db.insert("children", parent_id=pid)
        with pytest.raises(ForeignKeyError):
            db.insert("children", parent_id=999)

    def test_table_versions_snapshot_is_detached(self):
        db = make_db()
        snapshot = db.table_versions()
        db.insert("parents", name="a")
        assert db.table_versions()["parents"] == snapshot["parents"] + 1
