"""Crash-recovery property: for *any* WAL truncation point, ``open``
recovers exactly the last fully committed version.

The harness builds a durable database through a mixed workload (single
writes, multi-op transactions, cascades, DDL, one mid-stream checkpoint),
recording an oracle dump of the engine state after every committed frame.
It then simulates crashes by truncating a copy of the WAL at >= 100
randomized byte offsets — mid-header, mid-payload, at record boundaries —
reopens each copy, and asserts byte-for-byte state equality with the
oracle for however many frames survived intact.
"""

import random
import shutil

import pytest

from repro.db import (
    Column,
    Database,
    ForeignKey,
    TableSchema,
    database_to_dict,
    read_wal,
)
from repro.db.wal import MAGIC

N_OFFSETS = 120


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A durable store + per-frame oracle dumps.

    Returns ``(store_dir, oracle)`` where ``oracle[i]`` is the engine
    dump after the i-th post-checkpoint WAL frame (``oracle[0]`` is the
    checkpointed base state).
    """
    store = tmp_path_factory.mktemp("recovery") / "store"
    db = Database.open(store, wal_sync="off")
    db.create_table(TableSchema(
        "materials",
        columns=(
            Column("id", int),
            Column("title", str),
            Column("collection", str, default=""),
        ),
        unique=(("title",),),
    ))
    db.create_table(TableSchema(
        "tags",
        columns=(Column("id", int), Column("name", str)),
        unique=(("name",),),
    ))
    db.create_table(TableSchema(
        "material_tags",
        columns=(
            Column("id", int),
            Column("materials_id", int),
            Column("tags_id", int),
        ),
        foreign_keys=(
            ForeignKey("materials_id", "materials", on_delete="cascade"),
            ForeignKey("tags_id", "tags", on_delete="cascade"),
        ),
    ))
    for i in range(8):
        db.insert("materials", title=f"seed-{i}", collection="seed")
    # Everything up to here lands in the snapshot file; the workload
    # below becomes the WAL tail whose truncations we crash-test.
    db.checkpoint()

    oracle = [database_to_dict(db)]
    rng = random.Random(0xC0FFEE)

    def commit(fn):
        fn()
        oracle.append(database_to_dict(db))

    for i in range(10):
        commit(lambda i=i: db.insert(
            "materials", title=f"wal-{i}", collection=rng.choice("abc"),
        ))
    commit(lambda: db.table("materials").create_index("collection"))
    for i in range(6):
        commit(lambda i=i: db.insert("tags", name=f"tag-{i}"))

    def link_batch():
        with db.transaction():
            for t in range(1, 7):
                db.insert("material_tags", materials_id=1, tags_id=t)
                db.insert("material_tags", materials_id=2, tags_id=t)
    commit(link_batch)

    for pk in (3, 5, 7):
        commit(lambda pk=pk: db.update(
            "materials", pk, collection="renamed",
        ))
    commit(lambda: db.delete("materials", 1))   # cascades into links

    def mixed_tx():
        with db.transaction():
            row = db.insert("materials", title="tx-made")
            db.insert("material_tags", materials_id=row["id"], tags_id=2)
            db.update("materials", 4, collection="tx")
            db.delete("tags", 6)                # cascades into links
    commit(mixed_tx)

    db.close()
    return store, oracle


def crash_offsets(wal_bytes: bytes) -> list[int]:
    """>= N_OFFSETS truncation points, randomized plus boundary cases."""
    rng = random.Random(0xDEADBEEF)
    lo, hi = len(MAGIC), len(wal_bytes)
    offsets = {lo, hi, hi - 1, lo + 1, lo + 4, lo + 8}
    while len(offsets) < N_OFFSETS:
        offsets.add(rng.randint(lo, hi))
    return sorted(offsets)


class TestTornWalRecovery:
    def test_every_truncation_recovers_last_committed_version(
        self, corpus, tmp_path
    ):
        store, oracle = corpus
        wal_bytes = (store / "wal.log").read_bytes()
        full_frames, _, torn = read_wal(store / "wal.log")
        assert not torn
        assert len(full_frames) == len(oracle) - 1

        offsets = crash_offsets(wal_bytes)
        assert len(offsets) >= 100
        for offset in offsets:
            crashed = tmp_path / f"crash-{offset}"
            crashed.mkdir()
            shutil.copy(store / "snapshot.json", crashed / "snapshot.json")
            (crashed / "wal.log").write_bytes(wal_bytes[:offset])

            # How many frames survived is decided by the codec alone —
            # the replay path must agree with it exactly.
            survived, _, _ = read_wal(crashed / "wal.log")
            expected = oracle[len(survived)]

            db = Database.open(crashed, wal_sync="off")
            report = db.recovery_report
            assert report["frames_replayed"] == len(survived), offset
            recovered = database_to_dict(db)
            db.close()
            assert recovered == expected, (
                f"state diverged after truncation at byte {offset} "
                f"({len(survived)} frames survived)"
            )

    def test_truncation_then_reopen_is_stable(self, corpus, tmp_path):
        # Recovery must converge: opening a recovered store again replays
        # nothing new and reports no tear.
        store, oracle = corpus
        wal_bytes = (store / "wal.log").read_bytes()
        offset = (len(MAGIC) + len(wal_bytes)) // 2
        crashed = tmp_path / "crash"
        crashed.mkdir()
        shutil.copy(store / "snapshot.json", crashed / "snapshot.json")
        (crashed / "wal.log").write_bytes(wal_bytes[:offset])

        first = Database.open(crashed, wal_sync="off")
        state = database_to_dict(first)
        first.close()
        second = Database.open(crashed, wal_sync="off")
        assert not second.recovery_report["torn"]
        assert database_to_dict(second) == state
        second.close()
