"""The bounded change journal behind incremental index maintenance."""

import pytest

from repro.db import Column, Database, TableSchema


@pytest.fixture()
def db():
    database = Database("journal-test")
    database.create_table(TableSchema(
        "things",
        columns=(Column("id", int), Column("name", str)),
    ))
    return database


class TestRecords:
    def test_mutations_append_versioned_records(self, db):
        base = db.version
        row = db.insert("things", name="a")
        db.update("things", row["id"], name="b")
        db.delete("things", row["id"])
        changes = db.changes_since(base)
        assert [c.op for c in changes] == ["insert", "update", "delete"]
        assert [c.version for c in changes] == [base + 1, base + 2, base + 3]
        assert all(c.table == "things" for c in changes)
        assert all(c.pk == row["id"] for c in changes)

    def test_row_snapshots(self, db):
        base = db.version
        row = db.insert("things", name="a")
        db.update("things", row["id"], name="b")
        db.delete("things", row["id"])
        ins, upd, dele = db.changes_since(base)
        assert ins.row["name"] == "a"
        assert upd.row["name"] == "b"
        assert dele.row["name"] == "b"  # the removed row

    def test_ddl_is_logged(self, db):
        base = db.version
        db.create_table(TableSchema(
            "extra", columns=(Column("id", int),),
        ))
        db.drop_table("extra")
        assert [c.op for c in db.changes_since(base)] == [
            "create_table", "drop_table",
        ]

    def test_journal_is_contiguous_in_version(self, db):
        for i in range(20):
            db.insert("things", name=f"n{i}")
        changes = db.changes_since(db.version - 20)
        versions = [c.version for c in changes]
        assert versions == list(range(db.version - 19, db.version + 1))


class TestChangesSince:
    def test_current_version_yields_empty(self, db):
        assert db.changes_since(db.version) == []

    def test_future_version_yields_none(self, db):
        # A version observed inside a since-aborted transaction.
        assert db.changes_since(db.version + 5) is None

    def test_truncated_journal_yields_none(self):
        db = Database("tiny", changelog_size=4)
        db.create_table(TableSchema(
            "things", columns=(Column("id", int), Column("name", str)),
        ))
        base = db.version
        for i in range(10):
            db.insert("things", name=f"n{i}")
        assert db.changes_since(base) is None          # outran the bound
        assert db.changes_since(db.version - 4) is not None
        assert len(db.changes_since(db.version - 4)) == 4

    def test_exact_horizon_still_served(self):
        db = Database("tiny", changelog_size=4)
        db.create_table(TableSchema(
            "things", columns=(Column("id", int), Column("name", str)),
        ))
        for i in range(10):
            db.insert("things", name=f"n{i}")
        # The oldest retained record is version `db.version - 3`; asking
        # for everything after `db.version - 4` is exactly reachable.
        changes = db.changes_since(db.version - 4)
        assert [c.row["name"] for c in changes] == ["n6", "n7", "n8", "n9"]


class TestTransactions:
    def test_committed_transaction_keeps_records(self, db):
        base = db.version
        with db.transaction():
            db.insert("things", name="a")
            db.insert("things", name="b")
        assert [c.row["name"] for c in db.changes_since(base)] == ["a", "b"]

    def test_aborted_transaction_pops_records(self, db):
        db.insert("things", name="keep")
        base = db.version
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("things", name="phantom")
                raise RuntimeError("abort")
        assert db.changes_since(base) == []
        # The journal never mentions the phantom row again.
        assert all(
            c.row is None or c.row.get("name") != "phantom"
            for c in db.changes_since(0) or []
        )

    def test_outer_rollback_undoes_inner_commit(self, db):
        base = db.version
        with pytest.raises(RuntimeError):
            with db.transaction():
                with db.transaction():
                    db.insert("things", name="inner")
                raise RuntimeError("abort outer")
        assert db.changes_since(base) == []

    def test_rollback_restores_contiguity(self, db):
        base = db.version
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("things", name="phantom")
                raise RuntimeError("abort")
        db.insert("things", name="real")
        changes = db.changes_since(base)
        assert [c.row["name"] for c in changes] == ["real"]
        assert changes[0].version == base + 1
