"""Shared fixtures.

The seeded repository and the two ontologies are expensive to build
(CS13 alone has ~3000 entries), so they are session-scoped; tests that
mutate state request the function-scoped ``fresh_repo`` instead.
"""

from __future__ import annotations

import os

import pytest

from repro.core.repository import Repository
from repro.corpus.seed import seed_all, seed_ontologies
from repro.ontologies import load


#: Opt-in test tiers: tier-1 (the default run) must stay fast, so tests
#: that boot interpreters, build 10^5-row corpora, or chew through 10^6
#: rows each sit behind an environment flag CI enables stage by stage.
_OPT_IN_MARKERS = (
    ("multiproc", "CARCS_MULTIPROC",
     "spawns real server subprocesses"),
    ("slow", "CARCS_SLOW", "builds 10^5-row corpora"),
    ("scale", "CARCS_SCALE", "builds 10^6-row corpora"),
)


def pytest_collection_modifyitems(config, items):
    """Each opt-in marker is skipped unless its env flag is ``1``
    (``scripts/ci.sh`` flips them per stage)."""
    skips = {
        marker: pytest.mark.skip(reason=f"set {env}=1 to run ({why})")
        for marker, env, why in _OPT_IN_MARKERS
        if os.environ.get(env) != "1"
    }
    if not skips:
        return
    for item in items:
        for marker, skip in skips.items():
            if marker in item.keywords:
                item.add_marker(skip)


@pytest.fixture(scope="session")
def cs13():
    return load("CS13")


@pytest.fixture(scope="session")
def pdc12():
    return load("PDC12")


@pytest.fixture(scope="session")
def seeded_repo():
    """The paper's prototype state: both ontologies + all three corpora.

    Treat as read-only; mutating tests must use ``fresh_repo``.
    """
    return seed_all()


@pytest.fixture()
def fresh_repo():
    """An empty repository with both ontologies loaded."""
    repo = Repository()
    seed_ontologies(repo)
    return repo


@pytest.fixture()
def bare_repo():
    """An empty repository with no ontologies."""
    return Repository()
