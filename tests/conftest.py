"""Shared fixtures.

The seeded repository and the two ontologies are expensive to build
(CS13 alone has ~3000 entries), so they are session-scoped; tests that
mutate state request the function-scoped ``fresh_repo`` instead.
"""

from __future__ import annotations

import os

import pytest

from repro.core.repository import Repository
from repro.corpus.seed import seed_all, seed_ontologies
from repro.ontologies import load


def pytest_collection_modifyitems(config, items):
    """``multiproc`` tests boot several interpreters per test — opt in
    with ``CARCS_MULTIPROC=1`` (CI does; see ``scripts/ci.sh``)."""
    if os.environ.get("CARCS_MULTIPROC") == "1":
        return
    skip = pytest.mark.skip(reason="set CARCS_MULTIPROC=1 to run")
    for item in items:
        if "multiproc" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def cs13():
    return load("CS13")


@pytest.fixture(scope="session")
def pdc12():
    return load("PDC12")


@pytest.fixture(scope="session")
def seeded_repo():
    """The paper's prototype state: both ontologies + all three corpora.

    Treat as read-only; mutating tests must use ``fresh_repo``.
    """
    return seed_all()


@pytest.fixture()
def fresh_repo():
    """An empty repository with both ontologies loaded."""
    repo = Repository()
    seed_ontologies(repo)
    return repo


@pytest.fixture()
def bare_repo():
    """An empty repository with no ontologies."""
    return Repository()
