"""Property-based tests for the widget, keywords, and curation simulation."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.crowdsim import CurationConfig, simulate
from repro.ontologies import load
from repro.viz.tree_widget import TreeListWidget

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def pdc12_keys():
    onto = load("PDC12")
    return onto, [n.key for n in onto.nodes()]


@SETTINGS
@given(st.data())
def test_widget_visible_rows_always_have_visible_parents(pdc12_keys, data):
    """Whatever sequence of expand/collapse happens, a visible row's
    parent chain is fully expanded."""
    onto, keys = pdc12_keys
    widget = TreeListWidget(onto)
    actions = data.draw(
        st.lists(st.tuples(st.sampled_from(keys), st.booleans()), max_size=20)
    )
    for key, expand in actions:
        if expand:
            widget.expand(key)
        elif key != onto.root.key:
            widget.collapse(key)
    for row in widget.visible_rows():
        for ancestor in onto.ancestors(row.key):
            assert widget.is_expanded(ancestor.key)


@SETTINGS
@given(st.data())
def test_widget_selection_round_trips(pdc12_keys, data):
    onto, keys = pdc12_keys
    selectable = [k for k in keys if k != onto.root.key]
    widget = TreeListWidget(onto)
    chosen = data.draw(st.lists(st.sampled_from(selectable), max_size=10))
    for key in chosen:
        widget.select(key)
    cs = widget.to_classification()
    assert cs.keys(onto.name) == frozenset(chosen)
    # loading it back into a fresh widget reproduces the selection
    fresh = TreeListWidget(onto)
    fresh.load_classification(cs)
    assert fresh.selection() == frozenset(chosen)


@SETTINGS
@given(st.text(min_size=1, max_size=12))
def test_widget_search_hits_equal_ontology_search(pdc12_keys, phrase):
    onto, _ = pdc12_keys
    widget = TreeListWidget(onto)
    hits = widget.search(phrase)
    assert hits == len(onto.search(phrase))
    assert len(widget.highlighted()) == hits


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.floats(min_value=5.0, max_value=80.0),
    st.integers(min_value=0, max_value=9999),
)
def test_crowdsim_accounting_is_consistent(n_editors, load_per_day, seed):
    """published + backlog never exceeds arrivals, utilization stays in
    [0,1], and sojourns are at least the minimum review time."""
    config = CurationConfig(
        n_editors=n_editors,
        submissions_per_day=load_per_day,
        horizon_days=5.0,
        seed=seed,
    )
    result = simulate(config)
    assert result.published >= 0
    assert 0.0 <= result.editor_utilization <= 1.0
    assert result.mean_queue_length >= 0.0
    if result.published:
        assert result.mean_sojourn_minutes >= config.review_min * (
            1.0 - (config.autosuggest_speedup if config.autosuggest else 0.0)
        ) * 0.999


@settings(max_examples=10, deadline=None)
@given(st.lists(
    st.text(alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=3, max_size=8),
    min_size=4, max_size=10, unique=True,
))
def test_keyword_extraction_scores_bounded(words):
    """Keyword scores are TF-IDF values from L2 rows: within (0, 1]."""
    from repro.text.keywords import KeywordExtractor

    corpus = [" ".join(words[i:i + 3]) for i in range(len(words) - 2)]
    extractor = KeywordExtractor().fit(corpus)
    for doc in corpus:
        for kw in extractor.extract(doc):
            assert 0.0 < kw.score <= 1.0 + 1e-9
