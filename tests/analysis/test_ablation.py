"""Design-choice ablations."""

import pytest

from repro.analysis import (
    ancestor_expansion_effect,
    count_vs_jaccard,
    threshold_sweep,
)
from repro.corpus import collection_ids


@pytest.fixture(scope="module")
def ids(seeded_repo):
    return (
        collection_ids(seeded_repo, "nifty"),
        collection_ids(seeded_repo, "peachy"),
    )


class TestThresholdSweep:
    def test_edges_monotone_decreasing(self, seeded_repo, ids):
        nifty, peachy = ids
        sweep = threshold_sweep(seeded_repo, nifty, peachy)
        edges = [p.edges for p in sweep]
        assert edges == sorted(edges, reverse=True)

    def test_threshold_two_is_the_knee(self, seeded_repo, ids):
        """Threshold 1 floods the graph; 3 dissolves the paper's cluster."""
        nifty, peachy = ids
        sweep = {p.threshold: p for p in threshold_sweep(seeded_repo, nifty, peachy)}
        assert sweep[1].edges > 2 * sweep[2].edges
        assert sweep[2].edges == 24
        assert sweep[3].edges == 0

    def test_isolation_grows_with_threshold(self, seeded_repo, ids):
        nifty, peachy = ids
        sweep = threshold_sweep(seeded_repo, nifty, peachy, thresholds=(1, 2, 3))
        iso = [p.isolated_left + p.isolated_right for p in sweep]
        assert iso == sorted(iso)

    def test_component_stats(self, seeded_repo, ids):
        nifty, peachy = ids
        point = threshold_sweep(seeded_repo, nifty, peachy, thresholds=(2,))[0]
        assert point.components == 1
        assert point.largest_component == 10


class TestCountVsJaccard:
    def test_agreement_in_unit_interval(self, seeded_repo, ids):
        nifty, peachy = ids
        cmp = count_vs_jaccard(seeded_repo, nifty, peachy)
        assert 0.0 <= cmp.agreement <= 1.0

    def test_edge_counts_comparable(self, seeded_repo, ids):
        nifty, peachy = ids
        cmp = count_vs_jaccard(seeded_repo, nifty, peachy)
        assert cmp.count_edges == 24
        assert cmp.jaccard_edges >= 1


class TestAncestorExpansion:
    def test_expansion_never_loses_edges(self, seeded_repo, ids):
        nifty, peachy = ids
        effect = ancestor_expansion_effect(
            seeded_repo, nifty[:20], peachy, threshold=2
        )
        assert effect["expanded_edges"] >= effect["base_edges"]

    def test_expansion_inflates_similarity(self, seeded_repo, ids):
        """Counting shared units/areas as items makes materials in the
        same knowledge area look similar — the paper's direct-selection
        rule avoids this inflation."""
        nifty, peachy = ids
        effect = ancestor_expansion_effect(seeded_repo, nifty, peachy, threshold=2)
        assert effect["expanded_edges"] > effect["base_edges"]
