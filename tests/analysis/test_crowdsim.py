"""The crowdsourced-curation queue simulation."""

import pytest

from repro.analysis.crowdsim import (
    CurationConfig,
    editors_needed,
    simulate,
    sweep_editor_pool,
)


class TestSimulate:
    def test_deterministic_per_seed(self):
        a = simulate(CurationConfig(seed=7))
        b = simulate(CurationConfig(seed=7))
        assert a.published == b.published
        assert a.mean_sojourn_minutes == b.mean_sojourn_minutes

    def test_different_seeds_differ(self):
        a = simulate(CurationConfig(seed=1))
        b = simulate(CurationConfig(seed=2))
        assert a.published != b.published or (
            a.mean_sojourn_minutes != b.mean_sojourn_minutes
        )

    def test_published_bounded_by_arrivals(self):
        config = CurationConfig(submissions_per_day=10, horizon_days=10)
        result = simulate(config)
        assert 0 < result.published <= 10 * 10 + 1

    def test_sojourn_at_least_review_time(self):
        result = simulate(CurationConfig(n_editors=10))
        # with autosuggest off, nobody publishes faster than review_min
        assert result.mean_sojourn_minutes >= 15.0

    def test_utilization_in_unit_interval(self):
        result = simulate(CurationConfig())
        assert 0.0 <= result.editor_utilization <= 1.0

    def test_overloaded_pool_is_unstable(self):
        # ~20 items/day x ~20 min each = 400 min/day of work, but one
        # editor at 8h/day can absorb it; 200/day cannot be absorbed.
        result = simulate(CurationConfig(
            n_editors=1, submissions_per_day=200, horizon_days=10
        ))
        assert not result.stable()
        assert result.backlog_at_end > 10
        assert result.editor_utilization > 0.99

    def test_autosuggest_reduces_sojourn(self):
        base = simulate(CurationConfig(n_editors=2, submissions_per_day=40))
        assisted = simulate(CurationConfig(
            n_editors=2, submissions_per_day=40, autosuggest=True
        ))
        assert assisted.mean_sojourn_minutes < base.mean_sojourn_minutes

    def test_rework_increases_load(self):
        clean = simulate(CurationConfig(rework_probability=0.0))
        bouncy = simulate(CurationConfig(rework_probability=0.4))
        assert bouncy.editor_utilization > clean.editor_utilization


class TestSizing:
    def test_editors_needed_monotone_in_load(self):
        light = editors_needed(20, horizon_days=15)
        heavy = editors_needed(150, horizon_days=15)
        assert light <= heavy

    def test_autosuggest_never_needs_more_editors(self):
        for load in (50, 100):
            plain = editors_needed(load, horizon_days=15)
            assisted = editors_needed(load, autosuggest=True, horizon_days=15)
            assert assisted <= plain

    def test_autosuggest_saves_editors_at_high_load(self):
        plain = editors_needed(100, horizon_days=15)
        assisted = editors_needed(100, autosuggest=True, horizon_days=15)
        assert assisted < plain


class TestSweep:
    def test_sojourn_decreases_with_pool_size(self):
        results = sweep_editor_pool(
            pool_sizes=(1, 3, 8), submissions_per_day=50, horizon_days=15
        )
        sojourns = [r.mean_sojourn_minutes for r in results]
        assert sojourns[0] > sojourns[1] > sojourns[2]

    def test_utilization_decreases_with_pool_size(self):
        results = sweep_editor_pool(
            pool_sizes=(2, 4, 8), submissions_per_day=50, horizon_days=15
        )
        utils = [r.editor_utilization for r in results]
        assert utils == sorted(utils, reverse=True)
