"""Bloom-level coverage analysis (the paper's IV-A extension)."""

import pytest

from repro.analysis import bloom_coverage
from repro.core.material import Material
from repro.core.ontology import BloomLevel
from repro.corpus import keys as K


@pytest.fixture()
def repo_with_levels(fresh_repo):
    m = fresh_repo.add_material(
        Material(title="Integrator", description="rectangle method",
                 collection="c")
    )
    # OpenMP topic expects APPLY in PDC12; demonstrate only KNOW
    fresh_repo.classify(m.id, "PDC12", K.P_OPENMP, bloom=BloomLevel.KNOW)
    # Critical sections also expect APPLY; demonstrate APPLY
    fresh_repo.classify(m.id, "PDC12", K.P_CRITICAL, bloom=BloomLevel.APPLY)
    return fresh_repo


class TestBloomCoverage:
    def test_partition_is_complete(self, repo_with_levels, pdc12):
        from repro.core.ontology import NodeKind
        report = bloom_coverage(repo_with_levels, "PDC12")
        total = len(report.met) + len(report.under) + len(report.untaught)
        n_topics_with_bloom = sum(
            1 for n in pdc12.nodes()
            if n.kind is NodeKind.TOPIC and n.bloom is not None
        )
        assert total == n_topics_with_bloom

    def test_under_level_detected(self, repo_with_levels):
        report = bloom_coverage(repo_with_levels, "PDC12")
        under_keys = {g.key for g in report.under}
        assert K.P_OPENMP in under_keys

    def test_met_level_detected(self, repo_with_levels):
        report = bloom_coverage(repo_with_levels, "PDC12")
        met_keys = {g.key for g in report.met}
        assert K.P_CRITICAL in met_keys

    def test_untaught_has_no_materials(self, repo_with_levels):
        report = bloom_coverage(repo_with_levels, "PDC12")
        assert all(g.material_count == 0 for g in report.untaught)
        assert all(g.best_demonstrated is None for g in report.untaught)

    def test_deficit_ordering(self, repo_with_levels):
        report = bloom_coverage(repo_with_levels, "PDC12")
        deficits = [g.deficit for g in report.under]
        assert deficits == sorted(deficits, reverse=True)

    def test_unleveled_classification_treated_as_lowest(self, fresh_repo):
        m = fresh_repo.add_material(
            Material(title="X", description="d", collection="c")
        )
        fresh_repo.classify(m.id, "PDC12", K.P_OPENMP)  # no bloom
        report = bloom_coverage(fresh_repo, "PDC12")
        entry = next(g for g in report.under if g.key == K.P_OPENMP)
        assert entry.best_demonstrated is BloomLevel.KNOW

    def test_collection_filter(self, repo_with_levels):
        report = bloom_coverage(
            repo_with_levels, "PDC12", collection="ghost"
        )
        assert report.met == [] and report.under == []

    def test_summary_counts(self, repo_with_levels):
        report = bloom_coverage(repo_with_levels, "PDC12")
        summary = report.summary()
        assert summary["met"] == len(report.met)
        assert summary["under_level"] == len(report.under)
        assert summary["untaught"] == len(report.untaught)

    def test_seeded_corpus_is_mostly_untaught_at_level(self, seeded_repo):
        # seeded corpus classifies without Bloom levels -> conservative
        report = bloom_coverage(seeded_repo, "PDC12", collection="itcs3145")
        assert report.summary()["untaught"] > 0
        assert report.summary()["met"] > 0  # KNOW-level topics are met
