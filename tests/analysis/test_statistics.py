"""Descriptive corpus statistics."""

import pytest

from repro.analysis import (
    DistributionSummary,
    classification_sizes,
    collection_profile,
    entry_popularity,
    top_cooccurring_pairs,
)
from repro.corpus import keys as K


class TestDistributionSummary:
    def test_of_values(self):
        summary = DistributionSummary.of([1, 2, 3, 4, 10])
        assert summary.count == 5
        assert summary.mean == 4.0
        assert summary.median == 3.0
        assert summary.minimum == 1 and summary.maximum == 10

    def test_of_empty(self):
        summary = DistributionSummary.of([])
        assert summary.count == 0
        assert summary.mean == 0.0


class TestClassificationSizes:
    def test_seeded_materials_all_classified(self, seeded_repo):
        summary = classification_sizes(seeded_repo)
        assert summary.count == 97
        assert summary.minimum >= 3
        assert summary.maximum <= 15

    def test_itcs_is_richest(self, seeded_repo):
        # ITCS materials carry CS13 + PDC12 entries
        itcs = classification_sizes(seeded_repo, "itcs3145")
        nifty = classification_sizes(seeded_repo, "nifty")
        assert itcs.mean > nifty.mean


class TestEntryPopularity:
    def test_arrays_and_ctrl_are_cs13_hot_spots(self, seeded_repo):
        top = dict(entry_popularity(seeded_repo, "CS13", top=10))
        assert K.SDF_ARRAYS in top
        assert K.SDF_CTRL in top
        assert top[K.SDF_ARRAYS] >= 10

    def test_descending_order(self, seeded_repo):
        counts = [n for _, n in entry_popularity(seeded_repo, "PDC12", top=20)]
        assert counts == sorted(counts, reverse=True)

    def test_unknown_ontology_is_empty(self, seeded_repo):
        assert entry_popularity(seeded_repo, "NOPE") == []


class TestCooccurrence:
    def test_cluster_pair_is_the_strongest(self, seeded_repo):
        pairs = top_cooccurring_pairs(seeded_repo, top=5)
        keys = {(a, b) for a, b, _ in pairs}
        expected = tuple(sorted((K.SDF_ARRAYS, K.SDF_CTRL)))
        assert expected in keys

    def test_min_count_filter(self, seeded_repo):
        pairs = top_cooccurring_pairs(seeded_repo, top=100, min_count=5)
        assert all(n >= 5 for _, _, n in pairs)


class TestCollectionProfile:
    def test_itcs_profile(self, seeded_repo):
        profile = collection_profile(seeded_repo, "itcs3145")
        assert profile["materials"] == 21
        assert profile["kinds"] == {"assignment": 9, "lecture_slides": 12}
        assert profile["year_range"] == (2018, 2018)
        assert "MPI" in profile["languages"]

    def test_nifty_profile(self, seeded_repo):
        profile = collection_profile(seeded_repo, "nifty")
        assert profile["materials"] == 65
        assert profile["year_range"] == (2003, 2018)
        assert profile["with_datasets"] >= 8

    def test_empty_collection(self, seeded_repo):
        profile = collection_profile(seeded_repo, "ghost")
        assert profile["materials"] == 0
        assert profile["year_range"] is None
