"""Community alignment analysis (Section IV-C quantified)."""

import numpy as np
import pytest

from repro.analysis import compare_communities, coverage_vector
from repro.core.coverage import compute_coverage


@pytest.fixture(scope="module")
def nifty_vs_peachy(seeded_repo):
    return compare_communities(seeded_repo, "nifty", "peachy", "CS13")


class TestCompareCommunities:
    def test_alignment_is_low_but_nonzero(self, nifty_vs_peachy):
        # "while Nifty Assignments and Peachy Assignments may have some
        # commonalities" — the cluster keeps alignment above zero, but the
        # communities are far apart.
        assert 0.0 < nifty_vs_peachy.alignment < 0.5

    def test_per_area_sorted_by_reference(self, nifty_vs_peachy):
        counts = [a.reference_count for a in nifty_vs_peachy.per_area]
        assert counts == sorted(counts, reverse=True)

    def test_pd_misaligned_toward_candidate(self, nifty_vs_peachy):
        pd = next(a for a in nifty_vs_peachy.per_area if a.code == "PD")
        assert pd.reference_count == 0
        assert pd.candidate_count == 11
        assert not pd.balanced

    def test_sdf_is_balanced(self, nifty_vs_peachy):
        sdf = next(a for a in nifty_vs_peachy.per_area if a.code == "SDF")
        assert sdf.balanced
        assert sdf.overlap_entries >= 2  # Arrays + control structures

    def test_oop_misalignment_visible(self, nifty_vs_peachy):
        pl = next(a for a in nifty_vs_peachy.per_area if a.code == "PL")
        assert pl.reference_count > 0
        assert pl.candidate_count == 0

    def test_development_targets_are_nifty_staples(self, nifty_vs_peachy):
        targets = {
            e.label
            for e in nifty_vs_peachy.gap_report.top_development_targets(30)
        }
        # OOP staples of early CS that Peachy lacks
        assert any("classes and objects" in t for t in targets)

    def test_format_renders(self, nifty_vs_peachy):
        text = nifty_vs_peachy.format()
        assert "Alignment of 'peachy' with 'nifty'" in text
        assert "Top development targets" in text


class TestCoverageVector:
    def test_vector_length_matches_areas(self, seeded_repo, cs13):
        cov = compute_coverage(seeded_repo, "CS13", collection="nifty")
        vec = coverage_vector(cov, cs13)
        assert vec.shape == (18,)
        assert vec.max() == 55  # SDF

    def test_empty_collection_vector_is_zero(self, seeded_repo, cs13):
        cov = compute_coverage(seeded_repo, "CS13", collection="ghost")
        assert np.allclose(coverage_vector(cov, cs13), 0.0)
