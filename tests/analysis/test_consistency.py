"""The classification consistency linter."""

import pytest

from repro.analysis import lint_material, lint_repository
from repro.core.classification import ClassificationSet
from repro.core.material import Material
from repro.core.ontology import BloomLevel
from repro.corpus import keys as K


def add(repo, title, items):
    """items: iterable of (ontology, key, bloom-or-None)."""
    cs = ClassificationSet()
    for onto, key, bloom in items:
        cs.add(onto, key, bloom)
    return repo.add_material(
        Material(title=title, description="d", collection="c"), cs
    )


class TestCrossOntology:
    def test_cs13_pd_without_pdc12_flagged(self, fresh_repo):
        m = add(fresh_repo, "A", [("CS13", K.PD_LOOPS, None)])
        findings = lint_material(fresh_repo, m.id)
        assert [f.rule for f in findings] == ["cross-ontology"]

    def test_pdc12_without_cs13_pd_flagged(self, fresh_repo):
        m = add(fresh_repo, "A", [("PDC12", K.P_OPENMP, None)])
        findings = lint_material(fresh_repo, m.id)
        assert [f.rule for f in findings] == ["cross-ontology"]

    def test_consistent_pair_clean(self, fresh_repo):
        m = add(fresh_repo, "A", [
            ("CS13", K.PD_LOOPS, None),
            ("PDC12", K.P_PARLOOPS, None),
        ])
        assert lint_material(fresh_repo, m.id) == []

    def test_non_pd_material_clean(self, fresh_repo):
        m = add(fresh_repo, "A", [("CS13", K.SDF_ARRAYS, None)])
        assert lint_material(fresh_repo, m.id) == []


class TestOrphanInterior:
    def test_unit_without_topics_flagged(self, fresh_repo):
        from repro.ontologies.cs2013 import unit_key
        unit = unit_key("SDF", "Fundamental Data Structures")
        m = add(fresh_repo, "A", [("CS13", unit, None)])
        findings = lint_material(fresh_repo, m.id)
        assert any(f.rule == "orphan-interior" for f in findings)

    def test_unit_with_topic_clean(self, fresh_repo):
        from repro.ontologies.cs2013 import unit_key
        unit = unit_key("SDF", "Fundamental Data Structures")
        m = add(fresh_repo, "A", [
            ("CS13", unit, None),
            ("CS13", K.SDF_ARRAYS, None),
        ])
        assert not any(
            f.rule == "orphan-interior"
            for f in lint_material(fresh_repo, m.id)
        )


class TestOverBroad:
    def test_too_many_entries_flagged(self, fresh_repo):
        keys = [
            K.SDF_ARRAYS, K.SDF_CTRL, K.SDF_VARS, K.SDF_FUNCS, K.SDF_IO,
            K.SDF_EXPR, K.SDF_STRINGS, K.SDF_RECURSION, K.AL_BIGO,
            K.AL_DNC, K.AL_GREEDY, K.AL_DP,
        ]
        m = add(fresh_repo, "A", [("CS13", k, None) for k in keys])
        findings = lint_material(fresh_repo, m.id, max_entries=10)
        assert any(f.rule == "over-broad" for f in findings)

    def test_threshold_respected(self, fresh_repo):
        m = add(fresh_repo, "A", [
            ("CS13", K.SDF_ARRAYS, None), ("CS13", K.SDF_CTRL, None),
        ])
        assert not any(
            f.rule == "over-broad"
            for f in lint_material(fresh_repo, m.id, max_entries=2)
        )


class TestBloom:
    def test_demonstrated_above_expected_flagged(self, fresh_repo):
        # P_MPI expects COMPREHEND in PDC12; APPLY exceeds it
        m = add(fresh_repo, "A", [
            ("PDC12", K.P_MPI, BloomLevel.APPLY),
            ("CS13", K.PD_MSG, None),
        ])
        findings = lint_material(fresh_repo, m.id)
        assert any(f.rule == "bloom" for f in findings)

    def test_matching_level_clean(self, fresh_repo):
        m = add(fresh_repo, "A", [
            ("PDC12", K.P_MPI, BloomLevel.COMPREHEND),
            ("CS13", K.PD_MSG, None),
        ])
        assert not any(
            f.rule == "bloom" for f in lint_material(fresh_repo, m.id)
        )


class TestRepositoryLint:
    def test_seeded_corpus_has_exactly_one_known_finding(self, seeded_repo):
        """The only lint hit on the reconstructed corpus is the paper's
        own IV-A example: the *sequential* integration assignment carries
        a PDC12 algorithm entry but (correctly) no CS13 PD entries."""
        findings = lint_repository(seeded_repo)
        assert len(findings) == 1
        assert findings[0].title == (
            "Numerical Integration with the Rectangle Method"
        )
        assert findings[0].rule == "cross-ontology"

    def test_rule_filter(self, seeded_repo):
        assert lint_repository(seeded_repo, rules=["over-broad"]) == []

    def test_collection_filter(self, seeded_repo):
        assert lint_repository(seeded_repo, collection="nifty") == []
