"""Variant discovery."""

import pytest

from repro.analysis import find_variants, variant_matrix
from repro.core.classification import ClassificationSet
from repro.core.material import CourseLevel, Material, MaterialKind
from repro.corpus import keys as K


@pytest.fixture()
def repo(fresh_repo):
    def add(title, keys, **mat):
        cs = ClassificationSet()
        for key in keys:
            cs.add(key.split("/", 1)[0], key)
        return fresh_repo.add_material(
            Material(title=title, description="d", collection="c", **mat), cs
        )

    base = add("Java Life", [K.CN_CELLULAR, K.CN_MODELS, K.SDF_ARRAYS],
               languages=("Java",), course_level=CourseLevel.CS1)
    python_variant = add(
        "Python Life", [K.CN_CELLULAR, K.CN_MODELS, K.SDF_ARRAYS],
        languages=("Python",), course_level=CourseLevel.CS1,
    )
    clone = add("Java Life Again", [K.CN_CELLULAR, K.CN_MODELS, K.SDF_ARRAYS],
                languages=("Java",), course_level=CourseLevel.CS1)
    unrelated = add("Sorting", [K.AL_SORT_NLOGN, K.AL_DNC],
                    languages=("Java",))
    weak = add("Grid Art", [K.CN_CELLULAR, K.GV_RASTER, K.GV_COLOR,
                            K.GV_MEDIA, K.GV_PRIMITIVES],
               languages=("Python",))
    return fresh_repo, base, python_variant, clone, unrelated, weak


class TestFindVariants:
    def test_language_variant_found(self, repo):
        r, base, python_variant, *_ = repo
        hits = find_variants(r, base.id)
        ids = [h.material.id for h in hits]
        assert python_variant.id in ids
        top = hits[0]
        assert "language" in top.differing_facets

    def test_identical_facets_excluded_by_default(self, repo):
        r, base, _, clone, *_ = repo
        hits = find_variants(r, base.id)
        assert clone.id not in [h.material.id for h in hits]

    def test_identical_facets_included_on_request(self, repo):
        r, base, _, clone, *_ = repo
        hits = find_variants(r, base.id, require_facet_difference=False)
        assert clone.id in [h.material.id for h in hits]

    def test_unrelated_material_excluded(self, repo):
        r, base, *_, unrelated, _ = repo
        hits = find_variants(r, base.id, require_facet_difference=False)
        assert unrelated.id not in [h.material.id for h in hits]

    def test_low_jaccard_excluded(self, repo):
        r, base, *_, weak = repo
        # weak shares only 1 entry of 5 -> jaccard 1/7 < 0.25
        hits = find_variants(r, base.id)
        assert weak.id not in [h.material.id for h in hits]

    def test_ordering_by_jaccard(self, seeded_repo):
        # Hurricane Tracker in the seeded corpus has several cluster
        # neighbors at varying similarity
        hurricane = next(
            m for m in seeded_repo.materials("nifty")
            if m.title == "Hurricane Tracker"
        )
        hits = find_variants(
            seeded_repo, hurricane.id, min_jaccard=0.1,
        )
        jaccards = [h.jaccard for h in hits]
        assert jaccards == sorted(jaccards, reverse=True)

    def test_limit(self, seeded_repo):
        m = seeded_repo.materials("nifty")[0]
        hits = find_variants(seeded_repo, m.id, min_jaccard=0.0,
                             min_overlap=1, limit=3)
        assert len(hits) <= 3


class TestVariantMatrix:
    def test_matrix_covers_collection(self, repo):
        r, *_ = repo
        matrix = variant_matrix(r, "c")
        assert len(matrix) == 5

    def test_symmetry_of_variant_relation(self, repo):
        r, base, python_variant, *_ = repo
        matrix = variant_matrix(r, "c")
        assert python_variant.id in matrix[base.id]
        assert base.id in matrix[python_variant.id]
