"""Greedy course planning over classified materials."""

import pytest

from repro.analysis import core_targets, plan_course
from repro.core.classification import ClassificationSet
from repro.core.material import Material
from repro.core.ontology import NodeKind, Tier
from repro.corpus import keys as K


def add(repo, title, keys, collection="c"):
    cs = ClassificationSet()
    for key in keys:
        cs.add(key.split("/", 1)[0], key)
    return repo.add_material(
        Material(title=title, description="d", collection=collection), cs
    )


class TestCoreTargets:
    def test_core_targets_are_core_topics(self, pdc12):
        targets = core_targets(pdc12, [Tier.CORE])
        assert targets
        for key in targets:
            node = pdc12.node(key)
            assert node.kind is NodeKind.TOPIC
            assert node.tier is Tier.CORE

    def test_wider_tiers_superset(self, pdc12):
        core = core_targets(pdc12, [Tier.CORE])
        everything = core_targets(pdc12, list(Tier))
        assert core < everything


class TestPlanCourse:
    def test_greedy_picks_largest_gain_first(self, fresh_repo):
        big = add(fresh_repo, "Big", [K.P_OPENMP, K.P_PARLOOPS, K.P_SHMEM])
        add(fresh_repo, "Small", [K.P_OPENMP])
        plan = plan_course(
            fresh_repo, "PDC12", [K.P_OPENMP, K.P_PARLOOPS, K.P_SHMEM]
        )
        assert plan.picks[0].material_id == big.id
        assert len(plan.picks) == 1
        assert plan.coverage_ratio == 1.0

    def test_uncovered_targets_reported(self, fresh_repo):
        add(fresh_repo, "A", [K.P_OPENMP])
        plan = plan_course(fresh_repo, "PDC12", [K.P_OPENMP, K.P_MPI])
        assert plan.uncovered == frozenset({K.P_MPI})
        assert plan.coverage_ratio == 0.5

    def test_each_pick_adds_new_coverage(self, seeded_repo, pdc12):
        plan = plan_course(
            seeded_repo, "PDC12", core_targets(pdc12, [Tier.CORE])
        )
        seen: set[str] = set()
        for pick in plan.picks:
            gained = set(pick.newly_covered)
            assert gained, pick.title
            assert not (gained & seen)
            seen |= gained

    def test_max_materials_cap(self, seeded_repo, pdc12):
        capped = plan_course(
            seeded_repo, "PDC12", core_targets(pdc12, [Tier.CORE]),
            max_materials=3,
        )
        assert len(capped.picks) == 3

    def test_collection_restriction(self, seeded_repo, pdc12):
        targets = core_targets(pdc12, [Tier.CORE])
        itcs_only = plan_course(
            seeded_repo, "PDC12", targets, collections=["itcs3145"]
        )
        assert all(
            seeded_repo.get_material(p.material_id).collection == "itcs3145"
            for p in itcs_only.picks
        )

    def test_unknown_target_rejected(self, seeded_repo):
        with pytest.raises(KeyError):
            plan_course(seeded_repo, "PDC12", ["PDC12/NOT/REAL"])

    def test_empty_targets_trivially_complete(self, seeded_repo):
        plan = plan_course(seeded_repo, "PDC12", [])
        assert plan.picks == []
        assert plan.coverage_ratio == 1.0

    def test_format_renders(self, seeded_repo, pdc12):
        plan = plan_course(
            seeded_repo, "PDC12", core_targets(pdc12, [Tier.CORE]),
            max_materials=2,
        )
        text = plan.format(pdc12)
        assert "Course plan over PDC12" in text
        assert "covers" in text

    def test_greedy_is_deterministic(self, seeded_repo, pdc12):
        targets = core_targets(pdc12, [Tier.CORE])
        a = plan_course(seeded_repo, "PDC12", targets)
        b = plan_course(seeded_repo, "PDC12", targets)
        assert [p.material_id for p in a.picks] == [
            p.material_id for p in b.picks
        ]

    def test_plan_exposes_remaining_gaps(self, seeded_repo, pdc12):
        """What the greedy cover cannot reach is exactly what the gap
        analysis should flag as missing materials."""
        from repro.core.coverage import compute_coverage
        from repro.core.gaps import curriculum_holes

        plan = plan_course(
            seeded_repo, "PDC12", core_targets(pdc12, [Tier.CORE])
        )
        coverage = compute_coverage(seeded_repo, "PDC12")
        holes = {
            n.key for n in curriculum_holes(pdc12, coverage, tiers=(Tier.CORE,))
        }
        assert plan.uncovered == holes
