"""OBS — tracing overhead on the warm request path.

The tracing layer's budget (docs/architecture.md §Observability): in
``sampled`` mode, tracing may cost at most **10%** of a warm-path
request versus ``CARCS_TRACE=off``.  The verdict is

    (sampled − off) cost of the in-process pipeline
    ------------------------------------------------  <=  10%
        off cost of the same request over HTTP

**Numerator — in-process.**  Tracing is pure server-side CPU: every
span a request produces is opened and closed inside the application
pipeline (middleware chain → dispatch → core → db), which runs
identically whether the request arrives through a socket or a direct
call.  Driving :class:`CarCsApi` directly measures exactly that work,
and the difference of per-mode minima is stable to well under a
microsecond.  Differencing two *HTTP* timings instead would be
hopeless on a shared host: the client and server threads ping-pong
across the scheduler, so each closed-loop sample carries tens of
microseconds of scheduling noise — larger than the quantity measured.

**Denominator — HTTP.**  The budget is a fraction of what a real
client pays, so the baseline is the untraced request served by a live
:class:`ApiServer` over HTTP/1.1 keep-alive on loopback (HTTP parsing,
socket I/O, JSON framing included).

Both sides use a **minimum over many small interleaved chunks**: CPU
steal and frequency drift only ever *slow* a sample, so the minimum
converges on the interference-free cost, where means and medians
compare whatever steal each mode happened to absorb.  Chunk rounds
scale with ``CARCS_BENCH_OBS_ROUNDS`` (default 60).
"""

from __future__ import annotations

import http.client
import os
import time

import pytest

from _results import record
from repro.obs import MODE_ALL, MODE_OFF, MODE_SAMPLED, TraceStore, Tracer
from repro.web import CarCsApi, FrontTier, HttpBackend, LocalBackend
from repro.web.http import Request
from repro.web.server import ApiServer

SEARCH = "/api/v1/search?q=monte+carlo&limit=10"
COVERAGE = "/api/v1/coverage?collection=itcs3145&ontology=PDC12"

MODES = (MODE_OFF, MODE_SAMPLED, MODE_ALL)
ROUNDS = max(1, int(os.environ.get("CARCS_BENCH_OBS_ROUNDS", "60")))
REQUESTS_PER_CHUNK = 40
BASELINE_ROUNDS = 40
BASELINE_PER_CHUNK = 10
OVERHEAD_BUDGET = 0.10


@pytest.fixture(scope="module")
def harness(repo):
    tracer = Tracer(
        TraceStore(capacity=256), mode=MODE_ALL, sample_every=1, slow_ms=1e9,
    )
    app = CarCsApi(repo, tracer=tracer)
    with ApiServer(app, port=0) as server:
        conn = http.client.HTTPConnection("127.0.0.1", server.port)

        def get(path: str) -> int:
            conn.request("GET", path)
            response = conn.getresponse()
            response.read()
            return response.status

        # Warm everything mode-independent: search index, analytics
        # cache, the keep-alive connection itself.
        for path in (SEARCH, COVERAGE):
            assert get(path) == 200
        yield app, get, tracer
        conn.close()


def _pipeline_chunk(app, path: str) -> float:
    """Mean in-process seconds per request over one warm chunk."""
    build = Request.build
    start = time.perf_counter()
    for _ in range(REQUESTS_PER_CHUNK):
        assert app(build("GET", path)).status == 200
    return (time.perf_counter() - start) / REQUESTS_PER_CHUNK


def _http_chunk(get, path: str) -> float:
    """Mean over-HTTP seconds per request over one warm chunk."""
    start = time.perf_counter()
    for _ in range(BASELINE_PER_CHUNK):
        assert get(path) == 200
    return (time.perf_counter() - start) / BASELINE_PER_CHUNK


def _measure(app, get, tracer):
    """Per path: per-mode best pipeline chunk + best untraced HTTP chunk.

    Mode order rotates round to round so no mode always samples the
    same phase of whatever interference pattern the host is under.
    """
    out: dict[str, tuple[dict[str, float], float]] = {}
    for path in (SEARCH, COVERAGE):
        pipeline = {mode: float("inf") for mode in MODES}
        for round_no in range(ROUNDS):
            shift = round_no % len(MODES)
            for mode in MODES[shift:] + MODES[:shift]:
                tracer.configure(mode=mode, sample_every=1, slow_ms=1e9)
                seconds = _pipeline_chunk(app, path)
                if seconds < pipeline[mode]:
                    pipeline[mode] = seconds
        tracer.configure(mode=MODE_OFF)
        baseline = min(
            _http_chunk(get, path) for _ in range(BASELINE_ROUNDS)
        )
        out[path] = (pipeline, baseline)
    tracer.configure(mode=MODE_ALL, sample_every=1, slow_ms=1e9)
    return out


def _overhead(pipeline: dict[str, float], baseline: float,
              mode: str) -> float:
    return (pipeline[mode] - pipeline[MODE_OFF]) / baseline


def _report(path: str, pipeline: dict[str, float],
            baseline: float) -> None:
    print(f"\n{path}")
    print(f"  http request (off): {baseline * 1e6:8.2f} us/req "
          f"{1.0 / baseline:10.0f} req/s   (best of {BASELINE_ROUNDS} "
          f"chunks x {BASELINE_PER_CHUNK})")
    for mode in MODES:
        per_req = pipeline[mode]
        delta = per_req - pipeline[MODE_OFF]
        print(f"  pipeline {mode:8s} {per_req * 1e6:8.2f} us/req  "
              f"delta {delta * 1e6:+7.2f} us  "
              f"overhead {_overhead(pipeline, baseline, mode):+7.2%}"
              f"  (best of {ROUNDS} chunks x {REQUESTS_PER_CHUNK})")


def test_sampled_overhead_within_budget(harness):
    app, get, tracer = harness
    failures = []
    worst = 0.0
    for path, (pipeline, baseline) in _measure(app, get, tracer).items():
        _report(path, pipeline, baseline)
        overhead = _overhead(pipeline, baseline, MODE_SAMPLED)
        worst = max(worst, overhead)
        if overhead > OVERHEAD_BUDGET:
            failures.append(f"{path}: {overhead:.1%}")
    record("obs.sampled_trace_overhead", worst, OVERHEAD_BUDGET,
           comparator="<=", unit="fraction")
    assert not failures, (
        f"sampled-mode tracing exceeds the {OVERHEAD_BUDGET:.0%} warm-path "
        f"budget: {'; '.join(failures)}"
    )


@pytest.fixture(scope="module")
def fleet_harness(repo):
    """A router (FrontTier) proxying a primary, both ways it deploys.

    The *numerator* pipeline drives a LocalBackend front in-process —
    tracing cost is pure server-side CPU, identical whichever transport
    carries the hop, and the in-process form is the only one whose
    per-mode difference is stable (see the module docstring).  The
    *baseline* is the topology a real client actually pays for:
    ``carcs serve --router`` proxies over :class:`HttpBackend`, so the
    untraced request crosses two HTTP/1.1 hops (client → router →
    primary), both served live on loopback.
    """
    member_tracer = Tracer(
        TraceStore(capacity=256), mode=MODE_OFF, sample_every=1, slow_ms=1e9,
    )
    router_tracer = Tracer(
        TraceStore(capacity=256), mode=MODE_OFF, sample_every=1, slow_ms=1e9,
    )
    app = CarCsApi(repo, tracer=member_tracer)
    front = FrontTier(
        LocalBackend("primary", app), [],
        tracer=router_tracer, name="router",
    )
    with ApiServer(app, port=0) as member_server:
        http_front = FrontTier(
            HttpBackend("primary", member_server.url), [],
            tracer=router_tracer, name="router",
        )
        with ApiServer(http_front, port=0) as router_server:
            conn = http.client.HTTPConnection(
                "127.0.0.1", router_server.port
            )

            def get(path: str) -> int:
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                return response.status

            for path in (SEARCH, COVERAGE):
                assert get(path) == 200
            yield front, get, router_tracer, member_tracer
            conn.close()


def _front_chunk(front, path: str) -> float:
    """Mean in-process seconds per proxied request over one warm chunk."""
    build = Request.build
    start = time.perf_counter()
    for _ in range(REQUESTS_PER_CHUNK):
        assert front(build("GET", path)).status == 200
    return (time.perf_counter() - start) / REQUESTS_PER_CHUNK


def test_propagation_overhead_within_budget(fleet_harness):
    """Trace-context propagation on a router→primary proxied request —
    traceparent injection at the router, segment continuation at the
    member, two flight recorders instead of one — must stay within the
    same 10% warm-path budget as single-node tracing."""
    front, get, router_tracer, member_tracer = fleet_harness
    prop_modes = (MODE_OFF, MODE_SAMPLED)
    failures = []
    worst = 0.0
    for path in (SEARCH, COVERAGE):
        pipeline = {mode: float("inf") for mode in prop_modes}
        for round_no in range(ROUNDS):
            shift = round_no % len(prop_modes)
            for mode in prop_modes[shift:] + prop_modes[:shift]:
                router_tracer.configure(
                    mode=mode, sample_every=1, slow_ms=1e9,
                )
                member_tracer.configure(
                    mode=mode, sample_every=1, slow_ms=1e9,
                )
                seconds = _front_chunk(front, path)
                if seconds < pipeline[mode]:
                    pipeline[mode] = seconds
        router_tracer.configure(mode=MODE_OFF)
        member_tracer.configure(mode=MODE_OFF)
        baseline = min(
            _http_chunk(get, path) for _ in range(BASELINE_ROUNDS)
        )
        print(f"\n{path} (router -> primary)")
        print(f"  http request (off): {baseline * 1e6:8.2f} us/req")
        for mode in prop_modes:
            delta = pipeline[mode] - pipeline[MODE_OFF]
            print(f"  proxied {mode:8s} {pipeline[mode] * 1e6:8.2f} us/req"
                  f"  delta {delta * 1e6:+7.2f} us  overhead "
                  f"{_overhead(pipeline, baseline, mode):+7.2%}")
        overhead = _overhead(pipeline, baseline, MODE_SAMPLED)
        worst = max(worst, overhead)
        if overhead > OVERHEAD_BUDGET:
            failures.append(f"{path}: {overhead:.1%}")
    record("obs.propagated_trace_overhead", worst, OVERHEAD_BUDGET,
           comparator="<=", unit="fraction")
    assert not failures, (
        f"trace propagation exceeds the {OVERHEAD_BUDGET:.0%} warm-path "
        f"budget on proxied requests: {'; '.join(failures)}"
    )


def test_propagation_actually_crosses_the_hop(fleet_harness):
    # Guard against "fast because propagation silently no-ops": with
    # tracing on, one request must land one segment in *each* tier's
    # store under the same trace id.
    front, get, router_tracer, member_tracer = fleet_harness
    for tracer in (router_tracer, member_tracer):
        tracer.configure(mode=MODE_SAMPLED, sample_every=1, slow_ms=1e9)
        tracer.reset()
    response = front(Request.build("GET", SEARCH))
    assert response.status == 200
    trace_id = response.headers["x-trace-id"]
    assert router_tracer.store.get(trace_id) is not None
    assert member_tracer.store.get(trace_id) is not None
    for tracer in (router_tracer, member_tracer):
        tracer.configure(mode=MODE_OFF)


def test_traced_requests_actually_produce_traces(harness):
    # Guard against "fast because tracing silently no-ops": in sampled
    # mode every one of these warm requests must land in the store.
    app, get, tracer = harness
    tracer.configure(mode=MODE_SAMPLED, sample_every=1, slow_ms=1e9)
    tracer.reset()
    before = len(tracer.store)
    for _ in range(5):
        assert get(SEARCH) == 200
    assert tracer.stats()["retained"] == 5
    assert len(tracer.store) == before + 5
    tracer.configure(mode=MODE_ALL, sample_every=1, slow_ms=1e9)
