"""TIERED — bounded-memory opens and graceful overload shedding.

Two gates for the million-material scale-out
(docs/capacity.md, docs/architecture.md §Tiered storage):

**Gate A — bounded RSS.**  A blocked-checkpoint database synthesized
out of process (``carcs synth``) must open lazily: after the open plus
a point-read workload that strides across every region of the
keyspace, this process's RSS may grow by at most the block-cache
budget plus a fixed overhead allowance — independent of corpus size.
The default corpus is 10^5 materials; ``CARCS_SCALE=1`` reruns the
same gate at 10^6 (the opt-in ci.sh stage).

**Gate B — load shedding.**  Under sustained overload (offered load
far above the admission rate limit) the API must absorb the excess as
structured 429s while the *served* requests keep their latency: served
p99 stays within budget and every shed answer carries ``Retry-After``.
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
import threading
import time

import pytest

from _results import record
from repro.core.repository import Repository
from repro.corpus.seed import seed_ontologies
from repro.db import Database
from repro.obs.runtime import rss_bytes
from repro.web import CarCsApi, Client
from repro.web.middleware import CLIENT_HEADER

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Gate A sizing: cache budget the open is held to, plus a fixed
#: allowance for the interpreter, manifest, lazy pk maps and fixture
#: noise.  The allowance is deliberately generous — the point is that
#: it does NOT scale with the corpus (a 10^6 corpus is ~1.7 GB eager).
CACHE_BUDGET = 32 * 1024 * 1024
FIXED_OVERHEAD = 160 * 1024 * 1024
POINT_READS = 2_000

#: Gate B sizing: offered load (4 workers going flat out, in-process)
#: exceeds 50 req/s by orders of magnitude, so most requests must shed.
RATE_LIMIT = 50.0
RATE_BURST = 25.0
WORKERS = 4
REQUESTS_PER_WORKER = 250
SERVED_P99_BUDGET_S = 0.100


def _synthesize(directory, n: int) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    subprocess.run(
        [sys.executable, "-m", "repro.cli", "synth", str(directory),
         "--n", str(n)],
        cwd=REPO_ROOT, env=env, check=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        timeout=1800,
    )


def _bounded_open(tmp_path, monkeypatch, n: int, gate: str) -> None:
    _synthesize(tmp_path / "corpus", n)
    monkeypatch.setenv("CARCS_CACHE_BYTES", str(CACHE_BUDGET))
    gc.collect()
    before = rss_bytes()
    if before < 0:
        pytest.skip("RSS not measurable on this platform")
    db = Database.open(tmp_path / "corpus")
    materials = db.table("materials")
    stride = max(1, n // POINT_READS)
    for pk in range(1, n + 1, stride):
        assert materials.get(pk)["id"] == pk
    grown = rss_bytes() - before
    stats = db.storage_stats()
    budget = CACHE_BUDGET + FIXED_OVERHEAD
    print(f"\nTIERED gate A (n={n}): RSS +{grown / 1e6:.0f} MB "
          f"(budget {budget / 1e6:.0f} MB), "
          f"{stats['block_cache_misses']} block reads, "
          f"{stats['block_cache_evictions']} evictions, "
          f"cache {stats['block_cache_resident_bytes'] / 1e6:.1f} MB")
    record(gate, grown, budget, comparator="<=", unit="bytes")
    assert stats["block_cache_resident_bytes"] <= CACHE_BUDGET
    assert grown <= budget, (
        f"opening the {n}-material corpus grew RSS by "
        f"{grown / 1e6:.0f} MB; the lazy tier is budgeted "
        f"{budget / 1e6:.0f} MB"
    )
    db.close()


def test_bounded_rss_open_at_1e5(tmp_path, monkeypatch):
    """GATE — lazy open of a 10^5-material blocked checkpoint."""
    _bounded_open(tmp_path, monkeypatch, 100_000, "tiered.open_rss_1e5")


def test_bounded_rss_open_at_1e6(tmp_path, monkeypatch):
    """GATE (opt-in) — the same bound holds at 10^6 materials."""
    if os.environ.get("CARCS_SCALE") != "1":
        pytest.skip("set CARCS_SCALE=1 to run (builds a 10^6-row corpus)")
    _bounded_open(tmp_path, monkeypatch, 1_000_000, "tiered.open_rss_1e6")


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_overload_sheds_while_served_p99_holds():
    """GATE — admission control absorbs a sustained overload."""
    repo = Repository()
    seed_ontologies(repo)
    api = CarCsApi(repo, rate_limit=RATE_LIMIT, rate_burst=RATE_BURST)
    served: list[float] = []
    shed: list[float] = []
    bad: list[int] = []
    lock = threading.Lock()
    barrier = threading.Barrier(WORKERS)

    def worker() -> None:
        client = Client(api, root="/api/v1")
        headers = {CLIENT_HEADER: "bench"}  # one shared bucket
        barrier.wait()
        for i in range(REQUESTS_PER_WORKER):
            path = "/stats" if i % 2 else "/ontologies"
            t0 = time.perf_counter()
            response = client.get(path, headers=headers)
            elapsed = time.perf_counter() - t0
            with lock:
                if response.status == 200:
                    served.append(elapsed)
                elif (response.status == 429
                      and response.headers.get("retry-after")):
                    shed.append(elapsed)
                else:
                    bad.append(response.status)

    threads = [threading.Thread(target=worker) for _ in range(WORKERS)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)
    window = time.perf_counter() - t0

    total = WORKERS * REQUESTS_PER_WORKER
    shed_rate = len(shed) / total
    p99 = _percentile(served, 0.99)
    print(f"\nTIERED gate B: {total} requests in {window:.2f}s "
          f"(offered {total / window:,.0f} req/s, limit {RATE_LIMIT:.0f})")
    print(f"  served {len(served)} (p99 {p99 * 1e3:.2f} ms, "
          f"budget {SERVED_P99_BUDGET_S * 1e3:.0f} ms)   "
          f"shed {len(shed)} ({shed_rate:.0%})   other {bad[:5]}")
    record("tiered.shed_served_p99_s", p99, SERVED_P99_BUDGET_S,
           comparator="<=", unit="s")
    record("tiered.shed_rate_under_overload", shed_rate, 0.5, unit="fraction")
    assert not bad, f"unexpected statuses under overload: {bad[:5]}"
    assert len(served) >= RATE_BURST, "admission starved the workload"
    assert shed_rate >= 0.5, (
        f"offered load should overwhelm the {RATE_LIMIT:.0f}/s limit, "
        f"but only {shed_rate:.0%} was shed"
    )
    assert p99 <= SERVED_P99_BUDGET_S, (
        f"served p99 {p99 * 1e3:.1f} ms blew the "
        f"{SERVED_P99_BUDGET_S * 1e3:.0f} ms budget under overload"
    )
