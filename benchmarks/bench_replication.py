"""REPL — read fan-out scaling and bounded replica staleness.

Two gates for the replication tier (docs/architecture.md §Replication,
numbers recorded in EXPERIMENTS.md §REPL), run against **real**
``carcs serve`` processes over loopback TCP/HTTP — the same topology
as production, not an in-process simulation.

**Gate A — read fan-out.**  ``C`` client threads issue point reads for
a fixed wall-clock window, first all aimed at a single replica, then
spread across ``R = min(4, usable_cpus)`` replicas.  The gate is the
aggregate-throughput ratio *spread / single*:

* on hosts with **>= 4 usable CPUs** the ratio must be **>= 3.0** —
  the "at least 3x with 4 replicas" scaling claim;
* on smaller hosts real parallel speedup is physically unavailable
  (this container pins 1 CPU), so the gate degrades to a
  **no-collapse floor of 0.75**: fanning reads out must never *cost*
  throughput.  The 3x claim is then exercised by the same bench on
  multi-core hardware, not silently skipped — the ratio and CPU count
  are always printed and recorded.

**Gate B — bounded staleness.**  One writer commits through the
primary for a sustained window while each replica's
``/api/v1/replication`` is sampled continuously.  The gate:
``lag_seconds`` stays **<= 2.0** at every sample, and every replica
converges (``lag_versions == 0``) within 10 s of the last write.

Both gates use the best-of-rounds discipline (interference only ever
slows a sample); rounds via ``CARCS_BENCH_REPL_ROUNDS`` (default 2).
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from _results import record

ROUNDS = max(1, int(os.environ.get("CARCS_BENCH_REPL_ROUNDS", "2")))

USABLE_CPUS = len(os.sched_getaffinity(0))
REPLICAS = min(4, USABLE_CPUS)
CLIENTS = max(4, REPLICAS)
READ_WINDOW = 1.5          # seconds per measured round

#: >= 4 CPUs: the paper-level scaling claim.  Below: no-collapse.
FANOUT_FLOOR = 3.0 if USABLE_CPUS >= 4 else 0.75

WRITE_WINDOW = 2.0         # seconds of sustained primary writes
STALENESS_BOUND = 2.0      # max observed lag_seconds per sample
CONVERGE_TIMEOUT = 10.0

BOOT_TIMEOUT = 60.0
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _spawn(*argv: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _http(method: str, url: str, body=None, timeout=10.0):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"content-type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as resp:
        raw = resp.read()
        return resp.status, json.loads(raw) if raw else None


def _wait_http(url: str, deadline: float) -> None:
    last = None
    while time.time() < deadline:
        try:
            if _http("GET", url)[0] == 200:
                return
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            last = exc
        time.sleep(0.1)
    raise TimeoutError(f"{url} never came up: {last}")


class _Topology:
    def __init__(self):
        self.procs: list[subprocess.Popen] = []
        primary_port, self.repl_port = _free_port(), _free_port()
        self.primary_url = f"http://127.0.0.1:{primary_port}"
        deadline = time.time() + BOOT_TIMEOUT
        self.procs.append(_spawn(
            "serve", "--primary", "--host", "127.0.0.1",
            "--port", str(primary_port), "--repl-port", str(self.repl_port),
        ))
        _wait_http(f"{self.primary_url}/api/v1/healthz", deadline)
        self.replica_urls: list[str] = []
        for _ in range(REPLICAS):
            port = _free_port()
            self.procs.append(_spawn(
                "serve", "--replica", f"127.0.0.1:{self.repl_port}",
                "--host", "127.0.0.1", "--port", str(port),
                "--primary-url", self.primary_url,
            ))
            self.replica_urls.append(f"http://127.0.0.1:{port}")
        for url in self.replica_urls:
            _wait_http(f"{url}/api/v1/healthz", deadline)
        # One known row for the point-read workload, visible fleet-wide.
        _, created = _http(
            "POST", f"{self.primary_url}/api/v1/assignments",
            body={"title": "bench target"},
        )
        self.target_id = created["id"]
        self.wait_converged(time.time() + BOOT_TIMEOUT)

    def wait_converged(self, deadline: float) -> None:
        _, primary = _http("GET", f"{self.primary_url}/api/v1/replication")
        for url in self.replica_urls:
            while time.time() < deadline:
                _, status = _http("GET", f"{url}/api/v1/replication")
                if (status["connected"]
                        and status["applied_version"] >= primary["version"]):
                    break
                time.sleep(0.05)
            else:
                raise TimeoutError(f"{url} never converged")

    def stop(self) -> None:
        for proc in self.procs:
            proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


@pytest.fixture(scope="module")
def topology():
    topo = _Topology()
    yield topo
    topo.stop()


def _read_throughput(topology, targets: list[str]) -> float:
    """Aggregate GETs/s: client *i* hammers ``targets[i % len(targets)]``."""
    counts = [0] * CLIENTS
    stop = threading.Event()
    errors: list[Exception] = []

    def client(i: int) -> None:
        url = (f"{targets[i % len(targets)]}"
               f"/api/v1/assignments/{topology.target_id}")
        while not stop.is_set():
            try:
                with urllib.request.urlopen(url, timeout=10) as resp:
                    resp.read()
            except Exception as exc:  # noqa: BLE001 — fail the round
                errors.append(exc)
                return
            counts[i] += 1

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(CLIENTS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(READ_WINDOW)
    stop.set()
    for thread in threads:
        thread.join(timeout=30)
    elapsed = time.perf_counter() - start
    if errors:
        raise AssertionError(f"read worker died: {errors[0]!r}")
    return sum(counts) / elapsed


class TestReadFanOut:
    def test_fanning_reads_across_replicas_scales_throughput(self, topology):
        single = spread = 0.0
        for _ in range(ROUNDS):
            single = max(single, _read_throughput(
                topology, [topology.replica_urls[0]],
            ))
            spread = max(spread, _read_throughput(
                topology, topology.replica_urls,
            ))
        ratio = spread / single
        print(f"\nREPL gate A: cpus={USABLE_CPUS} replicas={REPLICAS} "
              f"clients={CLIENTS}")
        print(f"  single-replica: {single:8.1f} req/s")
        print(f"  {REPLICAS}-replica fan-out: {spread:8.1f} req/s "
              f"-> ratio {ratio:.2f}x (floor {FANOUT_FLOOR}x)")
        record("replication.read_fanout", ratio, FANOUT_FLOOR, unit="x")
        assert ratio >= FANOUT_FLOOR, (
            f"read fan-out ratio {ratio:.2f}x below the "
            f"{FANOUT_FLOOR}x floor ({USABLE_CPUS} usable CPUs)"
        )


class TestBoundedStaleness:
    def test_replica_lag_stays_bounded_under_sustained_writes(self, topology):
        stop = threading.Event()
        writes = [0]
        write_errors: list[Exception] = []

        def writer() -> None:
            while not stop.is_set():
                try:
                    _http("POST",
                          f"{topology.primary_url}/api/v1/assignments",
                          body={"title": f"staleness-{writes[0]}"})
                except Exception as exc:  # noqa: BLE001
                    write_errors.append(exc)
                    return
                writes[0] += 1

        samples: list[float] = []
        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        deadline = time.time() + WRITE_WINDOW
        while time.time() < deadline:
            for url in topology.replica_urls:
                _, status = _http("GET", f"{url}/api/v1/replication")
                samples.append(status["lag_seconds"])
            time.sleep(0.05)
        stop.set()
        thread.join(timeout=30)
        assert not write_errors, f"writer died: {write_errors[0]!r}"
        assert writes[0] > 0
        worst = max(samples)
        print(f"\nREPL gate B: {writes[0]} writes in {WRITE_WINDOW}s, "
              f"{len(samples)} lag samples across {REPLICAS} replica(s)")
        print(f"  worst lag_seconds: {worst:.3f} (bound {STALENESS_BOUND})")
        record("replication.worst_lag_seconds", worst, STALENESS_BOUND,
               comparator="<=", unit="s")
        assert worst <= STALENESS_BOUND
        # ...and the fleet converges once writes stop.
        topology.wait_converged(time.time() + CONVERGE_TIMEOUT)
