"""UC-B — the Section IV-B course-coverage narrative for ITCS 3145.

Regenerates every ranking statement of IV-B as a table and times the
full class-report pipeline.
"""

from __future__ import annotations

from repro.core.coverage import compute_coverage
from repro.core.report import class_report, coverage_summary_table


def test_itcs_class_report(benchmark, repo):
    report = benchmark(class_report, repo, "itcs3145", "PDC12")

    print("\nUC-B — ITCS 3145 vs PDC12")
    for area in report.ranked_areas + report.lightly_touched:
        print(f"  {area.label:32s} {area.count:3d}")

    ordered = [a.label for a in report.ranked_areas]
    assert ordered[0] == "Programming"
    assert ordered[1] == "Algorithm"
    light = {a.label for a in report.lightly_touched}
    assert {"Architecture", "Cross Cutting and Advanced"} <= light
    assert any("Tools" in hole for hole in report.core_holes)


def test_itcs_cs13_report(repo):
    report = class_report(repo, "itcs3145", "CS13")
    print("\nUC-B — ITCS 3145 vs CS13")
    for area in report.ranked_areas:
        print(f"  {area.label:44s} {area.count:3d}")
    codes = [a.code for a in report.ranked_areas + report.lightly_touched]
    assert codes[0] == "PD" and codes[1] == "AL"
    untouched = set(report.untouched_areas)
    for label in (
        "Human-Computer Interaction",
        "Social Issues and Professional Practice",
        "Information Assurance and Security",
        "Platform-Based Development",
        "Graphics and Visualization",
        "Intelligent Systems",
    ):
        assert label in untouched


def test_summary_table(benchmark, repo):
    rows = benchmark(
        coverage_summary_table, repo, ["nifty", "peachy", "itcs3145"], "CS13"
    )
    print("\nUC-B — CS13 coverage summary")
    for row in rows:
        print(
            f"  {row['collection']:10s} materials={row['materials']:3d} "
            f"entries={row['entries_touched']:4d} "
            f"areas={row['areas_covered']:2d} top={row['top_area']}"
        )
    assert rows[0]["top_area"] == "Software Development Fundamentals"
    assert rows[1]["top_area"] == "Parallel and Distributed Computing"
    assert rows[2]["top_area"] == "Parallel and Distributed Computing"


def test_coverage_computation_cost(benchmark, repo):
    """The raw coverage kernel over the largest (CS13) ontology."""
    # ">=": other benches (bench_api) may have added materials to the
    # session-scoped repository before this one runs.
    coverage = benchmark(compute_coverage, repo, "CS13")
    assert coverage.n_materials >= 97
