"""FIG3 — regenerate the Nifty↔Peachy similarity graph.

"A Nifty assignment and a Peachy assignment are said to be similar if
they share two classification items ... The graph shows that most
assignments have no similar assignment in the other set."  Benchmarks
the full graph build (incidence matrices + shared-item multiply +
thresholding) and the force-directed layout behind the figure.
"""

from __future__ import annotations

from repro.core.similarity import (
    clusters,
    isolated_materials,
    similarity_graph,
)
from repro.corpus.nifty import CLUSTER_TITLES as NIFTY_CLUSTER
from repro.corpus.peachy import CLUSTER_TITLES as PEACHY_CLUSTER
from repro.viz.graph_render import fruchterman_reingold, render_svg


def _build(repo, nifty_ids, peachy_ids):
    return similarity_graph(
        repo, nifty_ids, peachy_ids, threshold=2,
        left_group="nifty", right_group="peachy",
    )


def test_figure3_graph(benchmark, repo, nifty_ids, peachy_ids):
    graph = benchmark(_build, repo, nifty_ids, peachy_ids)

    iso_nifty = isolated_materials(graph, "nifty")
    iso_peachy = isolated_materials(graph, "peachy")
    print(
        f"\nFigure 3 — edges: {graph.number_of_edges()}, "
        f"isolated nifty {len(iso_nifty)}/65, "
        f"isolated peachy {len(iso_peachy)}/11"
    )

    # Paper shape: most assignments isolated; one cluster with the named
    # members; every edge justified by Arrays + control structures.
    assert len(iso_nifty) == 59 and len(iso_peachy) == 7
    comps = clusters(graph)
    assert len(comps) == 1
    titles = {repo.get_material(m).title for m in comps[0]}
    assert titles == set(NIFTY_CLUSTER) | set(PEACHY_CLUSTER)
    cs13 = repo.ontology("CS13")
    for _, _, data in graph.edges(data=True):
        labels = {cs13.node(k).label for k in data["shared_keys"]}
        assert labels == {
            "Arrays", "Conditional and iterative control structures"
        }


def test_figure3_layout(benchmark, repo, nifty_ids, peachy_ids):
    graph = _build(repo, nifty_ids, peachy_ids)
    pos = benchmark(fruchterman_reingold, graph, iterations=100)
    assert len(pos) == graph.number_of_nodes()
    svg = render_svg(graph, layout=pos)
    assert svg.count("<circle") == 76
