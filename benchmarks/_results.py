"""Machine-readable gate results.

``scripts/ci.sh`` exports ``CARCS_BENCH_RESULTS=BENCH_results.json``
before running the benchmark gates; every gate then calls
:func:`record` next to its pass/fail assertion so the run leaves one
JSON artifact mapping each gate to the number it measured and the
threshold it was held to::

    [{"name": "storage.pinned_read_speedup",
      "measured": 3.4, "threshold": 2.0,
      "comparator": ">=", "unit": "x"}, ...]

Without the environment variable set (ad-hoc ``pytest benchmarks/``
runs) recording is a no-op, so local experiments never litter the
working tree.  The gates run sequentially, so plain read-modify-write
is safe; entries with the same name are replaced, letting a re-run
stage overwrite its own rows.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

ENV_RESULTS = "CARCS_BENCH_RESULTS"


def results_path() -> Path | None:
    raw = os.environ.get(ENV_RESULTS, "").strip()
    return Path(raw) if raw else None


def record(
    name: str,
    measured: float,
    threshold: float,
    *,
    comparator: str = ">=",
    unit: str = "",
) -> None:
    """Append one gate verdict to the results file (if configured)."""
    path = results_path()
    if path is None:
        return
    entries = []
    if path.exists():
        entries = json.loads(path.read_text(encoding="utf-8"))
    entries = [e for e in entries if e["name"] != name]
    entries.append(
        {
            "name": name,
            "measured": round(float(measured), 6),
            "threshold": round(float(threshold), 6),
            "comparator": comparator,
            "unit": unit,
        }
    )
    entries.sort(key=lambda e: e["name"])
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(entries, indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)
