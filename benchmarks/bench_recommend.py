"""ABL-2 — classification auto-suggest accuracy (the paper's future work).

"Once more material is classified using the system, we should be able to
suggest classifications to save time for the user."  Leave-one-out
evaluation of the three recommenders over the seeded corpus, plus the
latency of a single interactive suggestion (what a curator would wait
for in the Figure 1 form).
"""

from __future__ import annotations

import pytest

from repro.core.recommend import (
    CooccurrenceRecommender,
    TextKnnRecommender,
    TextNbRecommender,
    evaluate_leave_one_out,
)
from repro.corpus import keys as K


def test_knn_leave_one_out(repo):
    result = evaluate_leave_one_out(
        repo,
        lambda exclude: TextKnnRecommender(repo).fit(exclude=exclude),
        top=10, limit=30,
    )
    print(
        f"\nABL-2 — kNN LOO over 30 materials: "
        f"P={result['precision']:.2f} R={result['recall']:.2f} "
        f"F1={result['f1']:.2f}"
    )
    assert result["precision"] > 0.10  # far above ~0.03 random baseline


def test_nb_leave_one_out(repo):
    result = evaluate_leave_one_out(
        repo,
        lambda exclude: TextNbRecommender(repo).fit(exclude=exclude),
        top=10, limit=15,
    )
    print(
        f"\nABL-2 — NB LOO over 15 materials: "
        f"P={result['precision']:.2f} R={result['recall']:.2f} "
        f"F1={result['f1']:.2f}"
    )
    assert 0.0 <= result["f1"] <= 1.0


def test_fast_loo_full_corpus(benchmark, repo):
    """The vectorised LOO over every classified material (one BLAS
    multiply + masked voting) — versus ~3s for the refit-per-material
    form; see EXPERIMENTS.md ABL-2."""
    from repro.core.recommend import evaluate_knn_loo_fast

    result = benchmark(evaluate_knn_loo_fast, repo, top=10)
    print(
        f"\nABL-2 — fast LOO over {int(result['n'])} materials: "
        f"P={result['precision']:.2f} R={result['recall']:.2f}"
    )
    assert result["precision"] > 0.10


def test_interactive_knn_latency(benchmark, repo):
    """What the curator waits for after typing the description."""
    recommender = TextKnnRecommender(repo).fit()
    suggestions = benchmark(
        recommender.recommend,
        "Parallelize a Monte Carlo forest-fire simulation over a tree "
        "array with OpenMP and measure speedup",
        top=10,
    )
    assert suggestions


def test_cooccurrence_fit_and_query(benchmark, repo):
    recommender = CooccurrenceRecommender(repo).fit()
    suggestions = benchmark(
        recommender.recommend, [K.SDF_ARRAYS, K.P_OPENMP], top=10,
        min_score=0.0,
    )
    keys = {s.key for s in suggestions}
    print(f"\nABL-2 — co-occurrence completions of Arrays+OpenMP: "
          f"{sorted(keys)[:4]}")
    assert K.SDF_CTRL in keys or K.P_PARLOOPS in keys


def test_knn_fit_cost(benchmark, repo):
    """Index build over the whole corpus (paid once per refresh)."""
    fitted = benchmark(lambda: TextKnnRecommender(repo).fit())
    assert fitted is not None
