"""SEARCH — incremental index maintenance vs rebuild-the-world.

The tentpole claim for the inverted-index search path: maintaining the
BM25 index through the database change journal makes a single-document
mutation O(changed docs), not O(corpus).  At 10⁴ materials a one-row
PATCH must be at least 10× cheaper to absorb than a full refit, and
query latency over the incremental index must match the rebuilt one
(they are bit-identical — tests/core/test_search_index.py proves it;
here we document the throughput).

Run with ``-s`` to see the measured table; the numbers feed
EXPERIMENTS.md §SEARCH.
"""

from __future__ import annotations

import time

import pytest

from repro.core.repository import Repository
from repro.core.search import MODE_BM25, MODE_DENSE, SearchEngine, SearchFilters
from repro.corpus.generator import GeneratorConfig, seed_synthetic
from repro.corpus.seed import seed_ontologies

SEARCH_SCALE_N = 10_000
QUERIES = (
    "parallel graph traversal",
    "sorting with threads",
    "matrix multiply cuda",
    "monte carlo simulation",
    "message passing broadcast",
)


@pytest.fixture(scope="module")
def search_repo():
    repo = Repository()
    seed_ontologies(repo)
    ids = seed_synthetic(
        repo, "CS13",
        GeneratorConfig(n_materials=SEARCH_SCALE_N, collection="bulk"),
    )
    return repo, ids


def test_cold_build_time(search_repo):
    """Document the cost of a from-scratch index build at n=10⁴."""
    repo, _ = search_repo
    engine = SearchEngine(repo, mode=MODE_BM25)
    t0 = time.perf_counter()
    engine.refresh()
    build_s = time.perf_counter() - t0
    stats = engine.stats()
    print(f"\nSEARCH cold build n={SEARCH_SCALE_N}: {build_s * 1e3:.1f} ms, "
          f"{stats['terms']} terms, {stats['postings']} postings")
    assert stats["docs"] == SEARCH_SCALE_N


def test_single_doc_update_beats_full_rebuild(search_repo):
    """The acceptance gate: absorbing one PATCH through the change
    journal must be ≥10× cheaper than refitting the whole index."""
    repo, ids = search_repo
    engine = SearchEngine(repo, mode=MODE_BM25)
    engine.refresh()

    # Full rebuild cost (best-of-3 to be scheduler-proof).
    rebuild_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        engine.refresh()
        rebuild_s = min(rebuild_s, time.perf_counter() - t0)

    # Single-document delta cost: PATCH one row, then let ensure_fresh()
    # catch up through the journal.  Best-of-3, touching a different
    # material each round so every measurement does real work.
    update_s = float("inf")
    for i in range(3):
        repo.update_material(ids[i], title=f"incremental probe {i}",
                             description="delta maintenance benchmark")
        t0 = time.perf_counter()
        engine.ensure_fresh()
        update_s = min(update_s, time.perf_counter() - t0)

    assert engine.docs_reindexed >= 3
    speedup = rebuild_s / update_s if update_s else float("inf")
    print(f"\nSEARCH single-doc update n={SEARCH_SCALE_N}: "
          f"rebuild {rebuild_s * 1e3:.1f} ms, delta {update_s * 1e6:.1f} µs, "
          f"{speedup:,.0f}x")
    assert update_s * 10 <= rebuild_s, (
        f"delta update only {speedup:.1f}x cheaper than rebuild "
        f"(rebuild {rebuild_s:.4f}s, update {update_s:.4f}s)"
    )


def test_query_throughput(search_repo):
    """Queries/second over the warm BM25 index at n=10⁴, text-only and
    facet-narrowed (facet intersection shrinks the scoring set)."""
    repo, _ = search_repo
    engine = SearchEngine(repo, mode=MODE_BM25)
    engine.refresh()

    rounds = 20
    t0 = time.perf_counter()
    for _ in range(rounds):
        for q in QUERIES:
            engine.search(q, limit=10)
    text_s = (time.perf_counter() - t0) / (rounds * len(QUERIES))

    filters = SearchFilters(collections=("bulk",), years=(2012, 2018))
    t0 = time.perf_counter()
    for _ in range(rounds):
        for q in QUERIES:
            engine.search(q, filters, limit=10)
    facet_s = (time.perf_counter() - t0) / (rounds * len(QUERIES))

    print(f"\nSEARCH query throughput n={SEARCH_SCALE_N}: "
          f"text {1 / text_s:,.0f} q/s ({text_s * 1e3:.2f} ms), "
          f"faceted {1 / facet_s:,.0f} q/s ({facet_s * 1e3:.2f} ms)")
    assert engine.search(QUERIES[0], limit=10)


def test_bm25_vs_dense_query_latency(search_repo):
    """Escape-hatch comparison: the dense TF-IDF path scores the whole
    corpus per query; BM25 touches only the query terms' postings."""
    repo, _ = search_repo
    bm25 = SearchEngine(repo, mode=MODE_BM25)
    dense = SearchEngine(repo, mode=MODE_DENSE)
    bm25.refresh()
    dense.refresh()

    def best_of(engine, rounds=5):
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            for q in QUERIES:
                engine.search(q, limit=10)
            best = min(best, (time.perf_counter() - t0) / len(QUERIES))
        return best

    bm25_s, dense_s = best_of(bm25), best_of(dense)
    print(f"\nSEARCH bm25 vs dense n={SEARCH_SCALE_N}: "
          f"bm25 {bm25_s * 1e3:.2f} ms/q, dense {dense_s * 1e3:.2f} ms/q, "
          f"{dense_s / bm25_s:.1f}x")
