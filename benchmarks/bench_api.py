"""FIG1 — the REST surface behind the Figure 1 interactions.

Times the request/response round trips the prototype's web UI performs:
creating a material with classifications (Figure 1a), phrase-searching
the classification tree (Figure 1b), and fetching the coverage and
similarity resources that back Figures 2 and 3.
"""

from __future__ import annotations

import itertools

import pytest

from repro.corpus import keys as K
from repro.web import CarCsApi, Client


@pytest.fixture(scope="module")
def client(repo):
    return Client(CarCsApi(repo), root="/api/v1")


_counter = itertools.count()


def test_create_material_roundtrip(benchmark, client):
    def create():
        n = next(_counter)
        response = client.post("/assignments", body={
            "title": f"Bench material {n}",
            "description": "parallel loops with OpenMP over arrays",
            "collection": "bench",
            "classifications": [
                {"ontology": "CS13", "key": K.SDF_ARRAYS},
                {"ontology": "PDC12", "key": K.P_OPENMP, "bloom": "apply"},
            ],
        })
        assert response.status == 201
        return response

    response = benchmark(create)
    assert len(response.json()["classifications"]) == 2


def test_tree_phrase_search(benchmark, client):
    response = benchmark(
        client.get, "/ontologies/CS13/entries?search=parallel&limit=25"
    )
    assert response.ok
    assert response.json()["total"] > 0


def test_coverage_resource(benchmark, client):
    response = benchmark(
        client.get, "/coverage?collection=itcs3145&ontology=PDC12"
    )
    assert response.json()["areas"][0]["label"] == "Programming"


def test_similarity_resource(benchmark, client):
    response = benchmark(
        client.get, "/similarity?left=nifty&right=peachy&threshold=2"
    )
    assert len(response.json()["edges"]) == 24


def test_text_search_endpoint(benchmark, client):
    response = benchmark(client.get, "/assignments?q=fractal+zoom&limit=5")
    assert response.ok
    titles = [r["title"] for r in response.json()["items"]]
    assert any("Fractal" in t for t in titles)
