"""EXT — extension features: edition migration, course planning, snapshots.

Not paper figures, but the operational paths a production CAR-CS needs
(DESIGN.md ABL/extension rows): migrating all classifications across a
curriculum revision, greedy course planning over core topics, and
snapshot round-trip cost.
"""

from __future__ import annotations

import pytest

from repro.analysis import core_targets, plan_course
from repro.core.migrate import migrate_classifications
from repro.core.ontology import Tier
from repro.core.persist import export_repository, import_repository
from repro.ontologies import load, pdc2019


def test_edition_migration(benchmark, repo):
    """Full PDC12 -> PDC19 migration of a repository copy."""

    def migrate():
        copy = import_repository(export_repository(repo))
        return migrate_classifications(
            copy, "PDC12", load("PDC19"), pdc2019.translate_key
        )

    report = benchmark.pedantic(migrate, rounds=3, iterations=1)
    print(f"\nEXT — migration: {report.summary()}")
    assert not report.dropped_links
    assert report.migrated_links > 100


def test_course_planning(benchmark, repo):
    pdc12 = repo.ontology("PDC12")
    targets = core_targets(pdc12, [Tier.CORE])
    plan = benchmark(plan_course, repo, "PDC12", targets)
    print(
        f"\nEXT — course plan: {len(plan.picks)} materials cover "
        f"{plan.coverage_ratio:.0%} of {len(targets)} core topics; "
        f"{len(plan.uncovered)} uncoverable with current corpus"
    )
    assert 0.5 < plan.coverage_ratio < 1.0  # gaps exist by design (IV-C)


def test_snapshot_roundtrip(benchmark, repo):
    def roundtrip():
        return import_repository(export_repository(repo))

    restored = benchmark.pedantic(roundtrip, rounds=3, iterations=1)
    assert restored.material_count() >= 97


def test_ontology_diff(benchmark):
    from repro.ontologies.diff import diff_ontologies

    diff = benchmark(diff_ontologies, load("PDC12"), load("PDC19"))
    assert diff.summary()["moved"] == 3
