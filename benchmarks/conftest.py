"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper artifact (DESIGN.md §4), printing the
reproduced rows/series (run with ``-s`` to see them) and asserting the
claim's *shape* before timing the underlying computation.
"""

from __future__ import annotations

import pytest

from repro.core import cache as cache_mod
from repro.corpus.seed import seed_all
from repro.corpus import collection_ids


def pytest_configure(config):
    # Honour CARCS_CACHE even if some import flipped the flag earlier:
    # `CARCS_CACHE=off pytest benchmarks/` measures every analysis cold.
    cache_mod.reset_global_enabled()


def pytest_report_header(config):
    state = "on" if cache_mod.global_enabled() else "off"
    return f"analytics cache: {state} (set {cache_mod.ENV_FLAG}=off to disable)"


@pytest.fixture(scope="session")
def cache_enabled() -> bool:
    return cache_mod.global_enabled()


@pytest.fixture(scope="session")
def repo():
    return seed_all()


@pytest.fixture(scope="session")
def nifty_ids(repo):
    return collection_ids(repo, "nifty")


@pytest.fixture(scope="session")
def peachy_ids(repo):
    return collection_ids(repo, "peachy")


@pytest.fixture(scope="session")
def itcs_ids(repo):
    return collection_ids(repo, "itcs3145")
