"""Shared fixtures for the benchmark harness.

Each bench regenerates one paper artifact (DESIGN.md §4), printing the
reproduced rows/series (run with ``-s`` to see them) and asserting the
claim's *shape* before timing the underlying computation.
"""

from __future__ import annotations

import pytest

from repro.corpus.seed import seed_all
from repro.corpus import collection_ids


@pytest.fixture(scope="session")
def repo():
    return seed_all()


@pytest.fixture(scope="session")
def nifty_ids(repo):
    return collection_ids(repo, "nifty")


@pytest.fixture(scope="session")
def peachy_ids(repo):
    return collection_ids(repo, "peachy")


@pytest.fixture(scope="session")
def itcs_ids(repo):
    return collection_ids(repo, "itcs3145")
