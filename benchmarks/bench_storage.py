"""STORAGE — MVCC read-path speedup and WAL write overhead.

Two gates for the durable storage core (docs/architecture.md
§Concurrency, §Storage & durability), numbers recorded in
EXPERIMENTS.md §STORAGE:

**Gate A — lock-free reads under a durable writer.**  8 reader
threads run point-lookup requests for a fixed wall-clock window while
one writer applies a sustained stream of fsynced single-row commits
(``wal_sync="always"`` — a durable ingest burst).  The baseline runs
every request under ``RWLock.acquire_read`` — exactly the discipline
of the deleted ``LockMiddleware`` read path — against the *same*
writer.  Because the lock prefers writers and the writer re-acquires
back-to-back, locked readers spend the window parked; MVCC readers
pin a snapshot and never wait.  The gate: pinned aggregate read
throughput must be **>= 2x** the locked baseline.  (Measured margin
is orders of magnitude; 2x is the floor, not the estimate.  Both
reader and writer rates are reported — under the GIL the RWLock mode
trades read availability for writer speed, MVCC the reverse.)

**Gate B — WAL batch-mode write overhead.**  Single-threaded bulk
ingest in transaction frames (the shape of corpus seeding: one WAL
record per multi-row transaction), durable ``wal_sync="batch"``
versus a pure in-memory database.  The gate: **<= 30%** overhead per
row.  Worst-case single-op frames (one record per row: JSON encode +
buffered write per commit, ~2x) are reported for context but not
gated — per-row durability at per-row granularity is what
``always``/``batch`` pacing is for.

Both gates use a **best-of-rounds** discipline: interference on a
shared host only ever slows a sample, so the max throughput / min
cost per mode converges on the interference-free figure.  Rounds
scale with ``CARCS_BENCH_STORAGE_ROUNDS`` (default 3).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from _results import record
from repro.db import Column, Database, TableSchema

ROUNDS = max(1, int(os.environ.get("CARCS_BENCH_STORAGE_ROUNDS", "3")))

READERS = 8
READ_WINDOW = 1.2          # seconds per measured round
ROWS = 2_000               # seeded point-lookup targets
LOOKUPS_PER_REQUEST = 10

READ_SPEEDUP_FLOOR = 2.0
WRITE_OVERHEAD_BUDGET = 0.30

TX_COUNT = 40              # gate-B ingest: transactions per round
TX_ROWS = 100              # rows per transaction frame
SINGLE_OPS = 2_000         # context figure: one frame per row

JOIN_TIMEOUT = 60.0


def _schema() -> TableSchema:
    return TableSchema(
        "items",
        columns=(
            Column("id", int),
            Column("name", str),
            Column("group", str, default=""),
        ),
    )


def _seeded_store(tmp_path, tag: str) -> Database:
    db = Database.open(tmp_path / tag, wal_sync="always")
    db.create_table(_schema())
    with db.transaction():
        for i in range(ROWS):
            db.insert("items", name=f"seed-{i}", group=f"g{i % 20}")
    db.checkpoint()  # reads race the WAL tail, not the seed replay
    return db


def _read_round(db: Database, mode: str) -> tuple[float, float]:
    """One fixed-window round; returns (reads/s, durable commits/s)."""
    go = threading.Event()
    stop = threading.Event()
    served = [0] * READERS

    def writer():
        go.wait(JOIN_TIMEOUT)
        i = 0
        while not stop.is_set():
            db.update("items", (i % ROWS) + 1, name=f"w{i}")
            i += 1
        served.append(i)  # slot READERS: commit count

    def reader(slot: int):
        go.wait(JOIN_TIMEOUT)
        n = 0
        while not stop.is_set():
            if mode == "lock":
                # The pre-MVCC discipline: read lock per request.
                db.lock.acquire_read()
                try:
                    t = db.table("items")
                    for k in range(LOOKUPS_PER_REQUEST):
                        t.get_or_none((n * 7 + k) % ROWS + 1)
                finally:
                    db.lock.release_read()
            else:
                with db.pinned():
                    t = db.table("items")
                    for k in range(LOOKUPS_PER_REQUEST):
                        t.get_or_none((n * 7 + k) % ROWS + 1)
            n += 1
        served[slot] = n

    threads = [threading.Thread(target=reader, args=(s,))
               for s in range(READERS)]
    w = threading.Thread(target=writer)
    for t in threads:
        t.start()
    w.start()
    go.set()
    time.sleep(READ_WINDOW)
    stop.set()
    w.join(JOIN_TIMEOUT)
    for t in threads:
        t.join(JOIN_TIMEOUT)
    assert not w.is_alive() and not any(t.is_alive() for t in threads)
    return (sum(served[:READERS]) / READ_WINDOW,
            served[READERS] / READ_WINDOW)


def _best_read_rate(tmp_path, mode: str) -> tuple[float, float]:
    best = (0.0, 0.0)
    for round_no in range(ROUNDS):
        db = _seeded_store(tmp_path, f"{mode}-{round_no}")
        try:
            rate = _read_round(db, mode)
        finally:
            db.close()
        if rate[0] > best[0]:
            best = rate
    return best


def _tx_ingest_cost(db: Database) -> float:
    """Seconds per row for TX_COUNT transactions of TX_ROWS inserts."""
    db.create_table(_schema())
    start = time.perf_counter()
    for tx in range(TX_COUNT):
        with db.transaction():
            for i in range(TX_ROWS):
                db.insert("items", name=f"t{tx}-{i}", group=f"g{i % 20}")
    return (time.perf_counter() - start) / (TX_COUNT * TX_ROWS)


def _single_op_cost(db: Database) -> float:
    """Seconds per row when every insert commits as its own frame."""
    db.create_table(_schema())
    start = time.perf_counter()
    for i in range(SINGLE_OPS):
        db.insert("items", name=f"s{i}", group=f"g{i % 20}")
    return (time.perf_counter() - start) / SINGLE_OPS


def _best_cost(make_db, measure) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        db = make_db()
        try:
            best = min(best, measure(db))
        finally:
            db.close()
    return best


def test_pinned_reads_beat_locked_reads_under_durable_writer(tmp_path):
    lock_rate, lock_commits = _best_read_rate(tmp_path, "lock")
    pin_rate, pin_commits = _best_read_rate(tmp_path, "pin")
    ratio = pin_rate / max(lock_rate, 1e-9)

    print(f"\n{READERS} reader threads x {READ_WINDOW:.1f}s window, "
          f"sustained fsynced writer (best of {ROUNDS} rounds)")
    print(f"  rwlock read path  {lock_rate:12,.0f} reads/s   "
          f"(writer {lock_commits:8,.0f} commits/s)")
    print(f"  pinned snapshots  {pin_rate:12,.0f} reads/s   "
          f"(writer {pin_commits:8,.0f} commits/s)")
    print(f"  speedup {ratio:10.1f}x   (gate: >= {READ_SPEEDUP_FLOOR:.0f}x)")

    record("storage.pinned_read_speedup", ratio, READ_SPEEDUP_FLOOR,
           unit="x")
    assert pin_rate > 0 and lock_rate >= 0
    assert ratio >= READ_SPEEDUP_FLOOR, (
        f"pinned reads only {ratio:.2f}x the RWLock baseline "
        f"({pin_rate:,.0f} vs {lock_rate:,.0f} reads/s); "
        f"gate is {READ_SPEEDUP_FLOOR:.0f}x"
    )


def test_wal_batch_write_overhead_within_budget(tmp_path):
    memory = _best_cost(lambda: Database("bench"), _tx_ingest_cost)

    counter = iter(range(10_000))
    durable = _best_cost(
        lambda: Database.open(
            tmp_path / f"tx-{next(counter)}", wal_sync="batch",
        ),
        _tx_ingest_cost,
    )
    overhead = durable / memory - 1.0

    memory_single = _best_cost(lambda: Database("bench"), _single_op_cost)
    durable_single = _best_cost(
        lambda: Database.open(
            tmp_path / f"single-{next(counter)}", wal_sync="batch",
        ),
        _single_op_cost,
    )

    print(f"\nbulk ingest, {TX_COUNT} transactions x {TX_ROWS} rows "
          f"(best of {ROUNDS} rounds)")
    print(f"  in-memory      {memory * 1e6:7.2f} us/row")
    print(f"  batch WAL      {durable * 1e6:7.2f} us/row   "
          f"overhead {overhead:+7.1%}   "
          f"(gate: <= {WRITE_OVERHEAD_BUDGET:.0%})")
    print(f"  single-op frames (context, ungated): "
          f"{memory_single * 1e6:.2f} -> {durable_single * 1e6:.2f} us/op "
          f"({durable_single / memory_single - 1.0:+.1%})")

    record("storage.batch_wal_overhead", overhead, WRITE_OVERHEAD_BUDGET,
           comparator="<=", unit="fraction")
    assert overhead <= WRITE_OVERHEAD_BUDGET, (
        f"batch-mode WAL costs {overhead:.1%} over in-memory on the "
        f"transaction-frame workload; budget is "
        f"{WRITE_OVERHEAD_BUDGET:.0%}"
    )


def test_durable_rounds_actually_hit_the_disk(tmp_path):
    # Guard against "fast because durability silently no-ops": the
    # gate-A store must fsync per commit and the gate-B store must
    # batch-fsync, with every row recoverable from disk.
    db = _seeded_store(tmp_path, "guard")
    db.update("items", 1, name="durably-renamed")
    stats = db.wal_stats()
    assert stats["appends"] >= 1
    assert stats["fsyncs"] >= stats["appends"]  # always-mode: one per commit
    db.close()
    again = Database.open(tmp_path / "guard")
    assert again.table("items").get(1)["name"] == "durably-renamed"
    assert len(again.table("items")) == ROWS
    again.close()
