"""JOBS — enqueue-to-suggestion throughput of the classification queue.

The crowdsourcing pipeline's steady state is a backlog of unclassified
submissions being drained by classify workers into pending suggestions
(docs/architecture.md, "Jobs").  This bench builds its own corpus (the
session ``repo`` fixture is shared and read-only): a synthetic training
set teaches the model, then 10^3 unclassified materials are enqueued as
chunked classify jobs and drained by a single inline worker.

The reproduced number is end-to-end **materials/second from enqueue to
filed suggestion** — it covers queue lease/complete WAL commits, one
memoized model build, batch inference, and the idempotent suggestion
writes.  The floor is deliberately conservative (CI machines vary);
typical throughput is an order of magnitude above it.
"""

from __future__ import annotations

import time

import pytest

from _results import record
from repro.core.classification import ClassificationSet
from repro.core.repository import Repository
from repro.corpus.generator import GeneratorConfig, generate_specs, seed_synthetic
from repro.corpus.seed import seed_ontologies
from repro.jobs import DONE, JobQueue, default_handlers, run_pending

N_TRAIN = 400              # classified materials the model learns from
N_BACKLOG = 1_000          # unclassified materials to drain
CHUNK = 100                # material_ids per classify job
THROUGHPUT_FLOOR = 25.0    # materials/s, conservative CI floor


@pytest.fixture(scope="module")
def backlog_repo():
    repo = Repository()
    seed_ontologies(repo)
    seed_synthetic(
        repo, "CS13",
        GeneratorConfig(n_materials=N_TRAIN, collection="train"),
    )
    # The backlog: same generator, later seed, classifications dropped.
    specs = generate_specs(
        repo.ontology("CS13"),
        GeneratorConfig(n_materials=N_BACKLOG, collection="inbox",
                        seed=20190521),
    )
    ids = [
        repo.add_material(material, ClassificationSet()).id
        for material, _ in specs
    ]
    return repo, ids


def test_enqueue_to_suggestion_throughput(backlog_repo):
    repo, ids = backlog_repo
    queue = JobQueue(repo.db)
    handlers = default_handlers(repo)

    start = time.perf_counter()
    jobs = [
        queue.enqueue("classify", {"material_ids": ids[i:i + CHUNK]})
        for i in range(0, len(ids), CHUNK)
    ]
    ran = run_pending(queue, handlers, worker_id="bench")
    elapsed = time.perf_counter() - start

    assert ran == len(jobs)
    assert queue.counts()[DONE] == len(jobs)
    suggested = sum(queue.get(j["id"])["result"]["suggested"] for j in jobs)
    placed = sum(
        1 for mid in ids if repo.suggestions(material_id=mid, status="pending")
    )
    throughput = len(ids) / elapsed

    print(f"\nJOBS gate: {len(ids)} materials in {len(jobs)} jobs "
          f"drained in {elapsed:.2f}s")
    print(f"  throughput: {throughput:8.1f} materials/s "
          f"(floor {THROUGHPUT_FLOOR})")
    print(f"  suggestions filed: {suggested} "
          f"({placed}/{len(ids)} materials got at least one)")

    assert suggested > 0
    assert placed >= len(ids) * 0.5, (
        "the model should place at least half the synthetic backlog"
    )
    record("jobs.classify_throughput", throughput, THROUGHPUT_FLOOR,
           unit="materials/s")
    assert throughput >= THROUGHPUT_FLOOR, (
        f"enqueue-to-suggestion throughput {throughput:.1f}/s below "
        f"the {THROUGHPUT_FLOOR}/s floor"
    )
