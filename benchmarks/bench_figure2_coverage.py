"""FIG2 — regenerate the six Figure 2 coverage panels.

"The three dataset classified against the PDC12 and CS13 ontologies ...
The color intensity of the node is proportional to the number of
material that matches that entry of the ontology."  Each bench builds
one panel's pruned coverage tree end to end (counts + rollup + tree),
prints the area-level series, asserts the paper's ranking shape, and
times the computation.
"""

from __future__ import annotations

import pytest

from repro.core.coverage import compute_coverage
from repro.viz import tree_render

PANELS = [
    ("a", "nifty", "CS13"),
    ("b", "peachy", "CS13"),
    ("c", "itcs3145", "CS13"),
    ("d", "nifty", "PDC12"),
    ("e", "peachy", "PDC12"),
    ("f", "itcs3145", "PDC12"),
]

# (collection, ontology) -> expected non-zero area ranking prefix
EXPECTED_PREFIX = {
    ("nifty", "CS13"): ["SDF", "PL", "AL", "CN"],
    ("peachy", "CS13"): ["PD", "SF", "AR"],
    ("itcs3145", "CS13"): ["PD", "AL", "CN", "SDF"],
    ("nifty", "PDC12"): [],
    ("peachy", "PDC12"): ["PROG"],
    ("itcs3145", "PDC12"): ["PROG", "ALGO"],
}


def _panel(repo, collection, ontology):
    coverage = compute_coverage(repo, ontology, collection=collection)
    tree = coverage.tree(repo.ontology(ontology))
    return coverage, tree


@pytest.mark.parametrize("panel,collection,ontology", PANELS)
def test_figure2_panel(benchmark, repo, panel, collection, ontology):
    coverage, tree = benchmark(_panel, repo, collection, ontology)

    onto = repo.ontology(ontology)
    ranking = [(a.code, n) for a, n in coverage.area_ranking(onto) if n > 0]
    print(f"\nFigure 2{panel} — {collection} / {ontology}: {ranking}")

    prefix = EXPECTED_PREFIX[(collection, ontology)]
    assert [code for code, _ in ranking[: len(prefix)]] == prefix

    # Pruning invariant from the caption: no zero-count nodes in the tree
    # and the panel renders to valid SVG.
    for node in tree_render.iter_nodes(tree):
        if node.depth >= 1:
            assert node.count > 0
    svg = tree_render.render_svg(tree)
    assert svg.startswith("<svg") and svg.endswith("</svg>")


def test_figure2_all_panels_consistency(repo):
    """Cross-panel claims: Nifty covers zero PDC entries anywhere, and
    every panel's root count equals the collection size with at least one
    classification."""
    nifty_pdc, _ = _panel(repo, "nifty", "PDC12")
    assert nifty_pdc.rollup_counts == {}

    for _, collection, ontology in PANELS:
        coverage, tree = _panel(repo, collection, ontology)
        assert tree.count == len(coverage.covered_material_ids)
