"""SCALE — how the analyses behave as the crowdsourced corpus grows.

The paper's curation model implies corpora well beyond the 97 seeded
materials.  Synthetic corpora of growing size drive the coverage,
similarity and search kernels; the benches document the scaling shape
(coverage ~linear in links; similarity ~quadratic in materials via one
BLAS multiply; search index build linear).
"""

from __future__ import annotations

import pytest

from repro.core.coverage import compute_coverage
from repro.core.repository import Repository
from repro.core.search import SearchEngine
from repro.core.similarity import incidence, shared_item_matrix
from repro.corpus.generator import GeneratorConfig, seed_synthetic
from repro.corpus.seed import seed_ontologies

SIZES = (100, 400, 1600)


@pytest.fixture(scope="module")
def synthetic_repos():
    repos = {}
    for size in SIZES:
        repo = Repository()
        seed_ontologies(repo)
        ids = seed_synthetic(
            repo, "CS13",
            GeneratorConfig(n_materials=size, collection="bulk"),
        )
        repos[size] = (repo, ids)
    return repos


@pytest.mark.parametrize("size", SIZES)
def test_coverage_scaling(benchmark, synthetic_repos, size):
    repo, _ = synthetic_repos[size]
    coverage = benchmark(compute_coverage, repo, "CS13", collection="bulk")
    assert coverage.n_materials == size
    print(f"\nSCALE coverage n={size}: "
          f"{len(coverage.rollup_counts)} entries touched")


@pytest.mark.parametrize("size", SIZES)
def test_similarity_kernel_scaling(benchmark, synthetic_repos, size):
    repo, ids = synthetic_repos[size]
    space = incidence(repo, ids)

    shared = benchmark(shared_item_matrix, space)
    assert shared.shape == (size, size)


@pytest.mark.parametrize("size", SIZES[:2])
def test_search_index_scaling(benchmark, synthetic_repos, size):
    repo, _ = synthetic_repos[size]
    engine = SearchEngine(repo)

    def build_and_query():
        engine.refresh()
        return engine.search("parallel graph traversal", limit=10)

    hits = benchmark(build_and_query)
    assert isinstance(hits, list)


def test_insert_throughput(benchmark):
    """Classified-material insert rate (the crowdsourcing write path)."""
    repo = Repository()
    seed_ontologies(repo)
    from repro.corpus.generator import generate_specs

    pairs = generate_specs(
        repo.ontology("CS13"), GeneratorConfig(n_materials=50)
    )

    counter = [0]

    def insert_batch():
        collection = f"batch{counter[0]}"
        counter[0] += 1
        for material, cs in pairs:
            from dataclasses import replace
            repo.add_material(
                replace(material,
                        title=f"{material.title} {collection}",
                        collection=collection),
                cs,
            )

    benchmark.pedantic(insert_batch, rounds=3, iterations=1)
    assert repo.material_count() >= 150
