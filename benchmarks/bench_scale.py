"""SCALE — how the analyses behave as the crowdsourced corpus grows.

The paper's curation model implies corpora well beyond the 97 seeded
materials.  Synthetic corpora of growing size drive the coverage,
similarity and search kernels; the benches document the scaling shape
(coverage ~linear in links; similarity ~quadratic in materials via one
BLAS multiply; search index build linear).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from _results import record
from repro.core.coverage import compute_coverage
from repro.core.gaps import find_gaps
from repro.core.ontology import NodeKind
from repro.core.repository import Repository
from repro.core.search import SearchEngine
from repro.core.similarity import incidence, shared_item_matrix, similarity_graph
from repro.corpus import keys as K
from repro.corpus.generator import GeneratorConfig, seed_synthetic
from repro.corpus.seed import seed_all, seed_ontologies
from repro.db import query as db_query
from repro.web import CarCsApi
from repro.web.server import ApiServer

SIZES = (100, 400, 1600)
CACHE_SCALE_N = 10_000
PLANNER_SCALE_N = 100_000
#: CI latency budgets for the 10⁵-material analytics (generous multiples
#: of observed times — ~0.35 s coverage, ~0.02 s gaps on a dev host — so
#: slow shared runners don't flake, while a regression to scan-and-sort
#: behaviour still trips them).
COVERAGE_BUDGET_S = 2.5
GAP_BUDGET_S = 1.5
HTTP_CLIENTS = 8
HTTP_REQUESTS_PER_CLIENT = 40


@pytest.fixture(scope="module")
def synthetic_repos():
    repos = {}
    for size in SIZES:
        repo = Repository()
        seed_ontologies(repo)
        ids = seed_synthetic(
            repo, "CS13",
            GeneratorConfig(n_materials=size, collection="bulk"),
        )
        repos[size] = (repo, ids)
    return repos


@pytest.mark.parametrize("size", SIZES)
def test_coverage_scaling(benchmark, synthetic_repos, size):
    repo, _ = synthetic_repos[size]
    coverage = benchmark(compute_coverage, repo, "CS13", collection="bulk")
    assert coverage.n_materials == size
    print(f"\nSCALE coverage n={size}: "
          f"{len(coverage.rollup_counts)} entries touched")


@pytest.mark.parametrize("size", SIZES)
def test_similarity_kernel_scaling(benchmark, synthetic_repos, size):
    repo, ids = synthetic_repos[size]
    space = incidence(repo, ids)

    shared = benchmark(shared_item_matrix, space)
    assert shared.shape == (size, size)


@pytest.mark.parametrize("size", SIZES[:2])
def test_search_index_scaling(benchmark, synthetic_repos, size):
    repo, _ = synthetic_repos[size]
    engine = SearchEngine(repo)

    def build_and_query():
        engine.refresh()
        return engine.search("parallel graph traversal", limit=10)

    hits = benchmark(build_and_query)
    assert isinstance(hits, list)


@pytest.fixture(scope="module")
def big_repo():
    """A 10⁴-material corpus (feasible since transactions journal undos
    instead of snapshotting every table on begin)."""
    repo = Repository()
    seed_ontologies(repo)
    ids = seed_synthetic(
        repo, "CS13",
        GeneratorConfig(n_materials=CACHE_SCALE_N, collection="bulk"),
    )
    return repo, ids


def _coverage_fingerprint(report) -> bytes:
    return json.dumps({
        "ontology": report.ontology,
        "n_materials": report.n_materials,
        "direct": sorted(report.direct_counts.items()),
        "rollup": sorted(report.rollup_counts.items()),
        "covered": sorted(report.covered_material_ids),
    }, sort_keys=True).encode()


def test_cached_coverage_speedup_at_scale(big_repo, cache_enabled):
    """Warm cached coverage must beat a cold pass ≥10× at n=10⁴, with
    byte-identical output."""
    if not cache_enabled:
        pytest.skip("CARCS_CACHE=off: measuring cold paths only")
    repo, _ = big_repo
    repo.cache.clear()

    t0 = time.perf_counter()
    cold = compute_coverage(repo, "CS13", collection="bulk")
    cold_s = time.perf_counter() - t0

    warm_s = float("inf")
    for _ in range(3):  # best-of-3 to keep the assertion scheduler-proof
        t0 = time.perf_counter()
        warm = compute_coverage(repo, "CS13", collection="bulk")
        warm_s = min(warm_s, time.perf_counter() - t0)

    assert warm is cold  # a hit returns the shared report
    repo.cache.enabled = False
    try:
        fresh = compute_coverage(repo, "CS13", collection="bulk")
    finally:
        repo.cache.enabled = True
    assert _coverage_fingerprint(warm) == _coverage_fingerprint(fresh)

    speedup = cold_s / warm_s if warm_s else float("inf")
    print(f"\nSCALE cached coverage n={CACHE_SCALE_N}: "
          f"cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e6:.1f} µs, "
          f"{speedup:,.0f}x")
    assert cold_s >= 10 * warm_s, (
        f"warm cache only {speedup:.1f}x faster (cold {cold_s:.4f}s, "
        f"warm {warm_s:.4f}s)"
    )


def test_cached_similarity_speedup_on_subset(big_repo, cache_enabled):
    """Similarity is quadratic, so the warm path is benched on a 500-id
    subset of the 10⁴ corpus (full n² would dominate the suite)."""
    if not cache_enabled:
        pytest.skip("CARCS_CACHE=off: measuring cold paths only")
    repo, ids = big_repo
    subset = ids[:500]
    repo.cache.clear()

    t0 = time.perf_counter()
    cold = similarity_graph(repo, subset, threshold=2)
    cold_s = time.perf_counter() - t0

    warm_s = float("inf")
    for _ in range(3):  # warm time is dominated by the defensive graph copy
        t0 = time.perf_counter()
        warm = similarity_graph(repo, subset, threshold=2)
        warm_s = min(warm_s, time.perf_counter() - t0)

    assert set(warm.nodes) == set(cold.nodes)
    assert set(map(frozenset, warm.edges)) == set(map(frozenset, cold.edges))
    speedup = cold_s / warm_s if warm_s else float("inf")
    print(f"\nSCALE cached similarity n=500: "
          f"cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.2f} ms, "
          f"{speedup:,.0f}x")
    assert cold_s >= 10 * warm_s


def test_cache_hit_rate_under_read_heavy_load(big_repo, cache_enabled):
    """The ROADMAP's read-heavy deployment shape: many reads per write.
    Documents the hit rate the ETag/analytics layer sustains."""
    if not cache_enabled:
        pytest.skip("CARCS_CACHE=off")
    repo, ids = big_repo
    repo.cache.clear()
    for round_no in range(5):
        for _ in range(20):
            compute_coverage(repo, "CS13", collection="bulk")
        repo.classify(ids[round_no], "CS13", K.PD_PATTERNS)
    stats = repo.cache.stats
    print(f"\nSCALE cache hit rate (100 reads / 5 writes): "
          f"{stats.hit_rate:.1%} ({stats.hits} hits, {stats.misses} misses, "
          f"{stats.invalidations} invalidations)")
    assert stats.hit_rate > 0.9


@pytest.fixture(scope="module")
def mega_repo():
    """A 10⁵-material corpus for the planner/analytics gates.

    Seeded by direct row inserts inside one transaction — the
    ``Repository.add_material`` path (author/tag dedup, submission
    bookkeeping) would dominate the suite at this scale, and the gates
    measure reads, not ingest.  Materials spread over 100 collections
    (~10³ rows each) with ~2 classifications per material."""
    repo = Repository()
    seed_ontologies(repo)
    onto = repo.ontology("CS13")
    keys = [n.key for n in onto.nodes()
            if n.kind in (NodeKind.TOPIC, NodeKind.LEARNING_OUTCOME)]
    eids = [repo.entry_id(k) for k in keys]
    db = repo.db
    with db.transaction():
        for i in range(PLANNER_SCALE_N):
            mid = db.insert(
                "materials",
                title=f"material {i:06d}",
                collection=f"c{i % 100:02d}",
                year=2000 + i % 20,
            )["id"]
            for j in range(2):
                db.insert(
                    "material_classifications",
                    materials_id=mid,
                    ontology_entries_id=eids[(i + j * 7) % len(eids)],
                )
    return repo


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_planner_speedup_at_1e5(mega_repo):
    """GATE — a planner-chosen indexed equality+order query must beat
    the naive full-scan interpretation ≥10× at 10⁵ rows.

    ``filter(collection=...)`` resolves through the hash index (~10³ of
    10⁵ rows touched); the naive reference interpreter copies and
    filters the whole table before sorting."""
    q = (db_query(mega_repo.db, "materials")
         .filter(collection="c07").order_by("title").limit(20))
    planned_s = _best_of(lambda: q.all())
    naive_s = _best_of(lambda: q._run_naive())
    assert q.all() == q._run_naive()
    speedup = naive_s / planned_s if planned_s else float("inf")
    print(f"\nSCALE planner n={PLANNER_SCALE_N}: "
          f"planned {planned_s * 1e3:.2f} ms, naive {naive_s * 1e3:.1f} ms, "
          f"{speedup:,.0f}x  [{q.plan().summary()}]")
    record("scale.planner_speedup_1e5", speedup, 10.0, unit="x")
    assert naive_s >= 10 * planned_s, (
        f"planned query only {speedup:.1f}x faster "
        f"(planned {planned_s:.4f}s, naive {naive_s:.4f}s)"
    )


def test_coverage_latency_at_1e5(mega_repo):
    """GATE — full-corpus coverage at 10⁵ materials stays within its CI
    latency budget (cold, cache cleared every round)."""
    def cold_coverage():
        mega_repo.cache.clear()
        return compute_coverage(mega_repo, "CS13")

    elapsed = _best_of(cold_coverage)
    report = compute_coverage(mega_repo, "CS13")
    assert report.n_materials == PLANNER_SCALE_N
    print(f"\nSCALE coverage n={PLANNER_SCALE_N}: {elapsed * 1e3:.0f} ms "
          f"(budget {COVERAGE_BUDGET_S:.1f} s)")
    record("scale.coverage_latency_1e5", elapsed, COVERAGE_BUDGET_S,
           comparator="<=", unit="s")
    assert elapsed < COVERAGE_BUDGET_S, (
        f"coverage took {elapsed:.2f}s at n={PLANNER_SCALE_N} "
        f"(budget {COVERAGE_BUDGET_S}s)"
    )


def test_gap_latency_at_1e5(mega_repo):
    """GATE — subset coverage + gap comparison against the full corpus
    stays within its CI latency budget at 10⁵ materials."""
    onto = mega_repo.ontology("CS13")
    reference = compute_coverage(mega_repo, "CS13")

    def cold_gaps():
        mega_repo.cache.clear()
        candidate = compute_coverage(mega_repo, "CS13", collection="c01")
        return find_gaps(onto, reference, candidate,
                         reference_name="all", candidate_name="c01")

    elapsed = _best_of(cold_gaps)
    report = cold_gaps()
    assert report.alignment > 0
    print(f"\nSCALE gaps n={PLANNER_SCALE_N}: {elapsed * 1e3:.0f} ms "
          f"(budget {GAP_BUDGET_S:.1f} s)")
    record("scale.gap_latency_1e5", elapsed, GAP_BUDGET_S,
           comparator="<=", unit="s")
    assert elapsed < GAP_BUDGET_S, (
        f"gap analysis took {elapsed:.2f}s at n={PLANNER_SCALE_N} "
        f"(budget {GAP_BUDGET_S}s)"
    )


def _hammer(url: str, clients: int, per_client: int) -> tuple[float, int]:
    """Fire ``clients × per_client`` GETs from concurrent threads;
    returns (elapsed seconds, completed-2xx count)."""
    done = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def worker(slot: int):
        barrier.wait()
        for _ in range(per_client):
            with urllib.request.urlopen(url, timeout=30) as response:
                if 200 <= response.status < 300:
                    done[slot] += 1

    threads = [
        threading.Thread(target=worker, args=(s,)) for s in range(clients)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join(120)
    return time.perf_counter() - t0, sum(done)


@pytest.mark.parametrize("threaded", (False, True), ids=("serial", "threaded"))
def test_http_request_throughput(threaded):
    """SCALE — requests/second over real HTTP with concurrent clients.

    Documents what the ThreadingHTTPServer flip buys: N clients hitting
    a cached analytics endpoint, serial vs threaded accept loop."""
    repo = seed_all()
    with ApiServer(CarCsApi(repo), port=0, threaded=threaded) as srv:
        url = f"{srv.url}/api/v1/coverage?collection=itcs3145&ontology=PDC12"
        urllib.request.urlopen(url, timeout=30).read()  # warm the cache
        elapsed, completed = _hammer(
            url, HTTP_CLIENTS, HTTP_REQUESTS_PER_CLIENT
        )
    expected = HTTP_CLIENTS * HTTP_REQUESTS_PER_CLIENT
    assert completed == expected
    rate = completed / elapsed if elapsed else float("inf")
    mode = "threaded" if threaded else "serial"
    print(f"\nSCALE http throughput [{mode}] {HTTP_CLIENTS} clients: "
          f"{completed} requests in {elapsed:.2f} s -> {rate:,.0f} req/s")


def test_insert_throughput(benchmark):
    """Classified-material insert rate (the crowdsourcing write path)."""
    repo = Repository()
    seed_ontologies(repo)
    from repro.corpus.generator import generate_specs

    pairs = generate_specs(
        repo.ontology("CS13"), GeneratorConfig(n_materials=50)
    )

    counter = [0]

    def insert_batch():
        collection = f"batch{counter[0]}"
        counter[0] += 1
        for material, cs in pairs:
            from dataclasses import replace
            repo.add_material(
                replace(material,
                        title=f"{material.title} {collection}",
                        collection=collection),
                cs,
            )

    benchmark.pedantic(insert_batch, rounds=3, iterations=1)
    assert repo.material_count() >= 150
