"""TAB-S1 — the corpus/ontology statistics asserted in the paper text.

No numbered table exists in the paper, but Sections II–IV scatter hard
numbers; this bench gathers them into one reproduced table and times the
full seeding of the prototype.
"""

from __future__ import annotations

from repro.core.material import MaterialKind
from repro.core.repository import Repository
from repro.corpus import MANUAL_CLASSIFICATION_MINUTES
from repro.corpus.seed import seed_all
from repro.ontologies import load


def test_seed_prototype(benchmark):
    """Time the end-to-end seeding (ontologies + 97 classified materials)."""
    built = benchmark(seed_all)
    assert built.material_count() == 97


def test_reported_statistics(repo):
    cs13 = repo.ontology("CS13")
    pdc12 = repo.ontology("PDC12")
    materials = repo.materials("itcs3145")
    decks = sum(1 for m in materials if m.kind is MaterialKind.LECTURE_SLIDES)
    assignments = sum(1 for m in materials if m.kind is MaterialKind.ASSIGNMENT)

    rows = [
        ("CS13 classification entries (paper: ~3000)", len(cs13)),
        ("CS13 knowledge areas", len(cs13.areas())),
        ("PDC12 areas (paper: 4)", len(pdc12.areas())),
        ("Nifty assignments (paper: ~65)", repo.material_count("nifty")),
        ("Peachy assignments (paper: 11)", repo.material_count("peachy")),
        ("ITCS 3145 slide decks (paper: 12)", decks),
        ("ITCS 3145 assignments (paper: 9)", assignments),
        ("classification links", repo.stats()["classification_links"]),
        ("manual minutes/item (paper: 15-25)", MANUAL_CLASSIFICATION_MINUTES),
    ]
    print("\nTAB-S1 — reproduced statistics")
    for label, value in rows:
        print(f"  {label:45s} {value}")

    assert 2700 <= len(cs13) <= 3400
    assert len(cs13.areas()) == 18
    assert len(pdc12.areas()) == 4
    assert repo.material_count("nifty") == 65
    assert repo.material_count("peachy") == 11
    assert (decks, assignments) == (12, 9)


def test_ontology_build_cost(benchmark):
    """How long loading the two curricula takes from scratch (the cost a
    fresh deployment pays once)."""

    def build():
        repo = Repository()
        from repro.ontologies import cs2013, pdc12
        repo.add_ontology(cs2013.build())
        repo.add_ontology(pdc12.build())
        return repo

    built = benchmark(build)
    assert len(built.db.table("ontology_entries")) > 3000


def test_ontology_phrase_search(benchmark):
    """The Figure 1b interaction: phrase search inside ~3000 entries."""
    cs13 = load("CS13")
    hits = benchmark(cs13.search, "parallel")
    assert len(hits) >= 10
