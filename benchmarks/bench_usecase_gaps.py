"""UC-C — the Section IV-C gap-identification narrative.

Regenerates the Nifty-vs-Peachy comparison: area rankings, the OOP
mismatch, the FPC-vs-FDS observation, and the alignment score; times
the full community comparison.
"""

from __future__ import annotations

from repro.analysis import compare_communities
from repro.core.coverage import compute_coverage
from repro.ontologies.cs2013 import unit_key


def test_community_comparison(benchmark, repo):
    comparison = benchmark(compare_communities, repo, "nifty", "peachy", "CS13")

    print("\nUC-C — Nifty vs Peachy over CS13 "
          f"(alignment {comparison.alignment:.3f})")
    for area in comparison.per_area:
        if area.reference_count or area.candidate_count:
            print(
                f"  {area.code:5s} nifty={area.reference_count:3d} "
                f"peachy={area.candidate_count:3d} both={area.overlap_entries}"
            )

    assert 0.0 < comparison.alignment < 0.5
    by_code = {a.code: a for a in comparison.per_area}
    # "Clearly Nifty Assignments do not cover any PDC topics while Peachy
    # Assignments do."
    assert by_code["PD"].reference_count == 0
    assert by_code["PD"].candidate_count == 11
    # OOP in Nifty only.
    assert by_code["PL"].candidate_count == 0


def test_nifty_ranking_claims(repo):
    cov = compute_coverage(repo, "CS13", collection="nifty")
    ranking = [
        (a.code, n) for a, n in cov.area_ranking(repo.ontology("CS13"))
    ]
    print("\nUC-C — Nifty CS13 ranking:", ranking[:6])
    assert [c for c, _ in ranking[:4]] == ["SDF", "PL", "AL", "CN"]


def test_peachy_ranking_claims(repo):
    cov = compute_coverage(repo, "CS13", collection="peachy")
    ranking = [
        (a.code, n) for a, n in cov.area_ranking(repo.ontology("CS13")) if n
    ]
    print("\nUC-C — Peachy CS13 ranking:", ranking)
    assert ranking[0][0] == "PD"
    assert {ranking[1][0], ranking[2][0]} == {"SF", "AR"}
    counts = dict(ranking)
    assert counts["SDF"] <= counts["AR"]


def test_peachy_sdf_structure(repo):
    """Peachy SDF = Fundamental Programming Concepts (variables, loops)
    plus only 'Arrays' from Fundamental Data Structures."""
    cov = compute_coverage(repo, "CS13", collection="peachy")
    fpc = unit_key("SDF", "Fundamental Programming Concepts")
    fds = unit_key("SDF", "Fundamental Data Structures")
    fpc_topics = [k for k in cov.direct_counts if k.startswith(fpc + "/")]
    fds_topics = [k for k in cov.direct_counts if k.startswith(fds + "/")]
    print(f"\nUC-C — Peachy SDF: {len(fpc_topics)} FPC topics, "
          f"{len(fds_topics)} FDS topics")
    assert len(fds_topics) == 1
    assert len(fpc_topics) >= 2


def test_development_targets(benchmark, repo):
    comparison = compare_communities(repo, "nifty", "peachy", "CS13")
    targets = benchmark(
        comparison.gap_report.top_development_targets, 10
    )
    print("\nUC-C — what the PDC community should build next:")
    for entry in targets:
        print(f"  ({entry.reference_count:2d} nifty uses) {entry.path}")
    assert targets
    assert targets[0].reference_count >= targets[-1].reference_count
