"""EXT-2 — the crowdsourced-curation scaling study.

Quantifies the conclusion's organizational claims: how many editors a
CAR-CS deployment needs at increasing submission loads, and how much the
classification auto-suggest (ABL-2) shrinks that pool by cutting the
paper's 15-25 minute review down.
"""

from __future__ import annotations

import pytest

from repro.analysis.crowdsim import (
    CurationConfig,
    editors_needed,
    simulate,
    sweep_editor_pool,
)

LOADS = (20, 50, 100, 200)


def test_editor_sizing_curve():
    print("\nEXT-2 — editors needed to keep the queue stable")
    print("  load/day  plain  with auto-suggest")
    rows = []
    for load in LOADS:
        plain = editors_needed(load, horizon_days=15)
        assisted = editors_needed(load, autosuggest=True, horizon_days=15)
        rows.append((load, plain, assisted))
        print(f"  {load:8d} {plain:6d} {assisted:18d}")
    # Pool grows with load; auto-suggest never needs more editors and
    # saves at least one editor at the highest load.
    plains = [p for _, p, _ in rows]
    assert plains == sorted(plains)
    assert all(a <= p for _, p, a in rows)
    assert rows[-1][2] < rows[-1][1]


def test_pool_size_sweep(benchmark):
    results = benchmark(
        sweep_editor_pool,
        pool_sizes=(1, 2, 3, 5, 8),
        submissions_per_day=50,
        horizon_days=15,
    )
    print("\nEXT-2 — 50 submissions/day, 15 working days")
    print("  editors  sojourn(min)  backlog  utilization")
    for r in results:
        print(
            f"  {r.config.n_editors:7d} {r.mean_sojourn_minutes:12.1f} "
            f"{r.backlog_at_end:8d} {r.editor_utilization:11.2f}"
        )
    sojourns = [r.mean_sojourn_minutes for r in results]
    assert sojourns == sorted(sojourns, reverse=True)


def test_single_run_cost(benchmark):
    """One 30-day simulation (the unit of the sizing search)."""
    result = benchmark(simulate, CurationConfig(submissions_per_day=50))
    assert result.published > 0
