"""ABL-1 — why "share two classification items"?

Sweeps the Figure 3 edge threshold and compares the paper's absolute-
count rule against a Jaccard rule, showing threshold 2 is the knee that
keeps exactly the meaningful cluster.
"""

from __future__ import annotations

from repro.analysis import (
    ancestor_expansion_effect,
    count_vs_jaccard,
    threshold_sweep,
)


def test_threshold_sweep(benchmark, repo, nifty_ids, peachy_ids):
    sweep = benchmark(threshold_sweep, repo, nifty_ids, peachy_ids)

    print("\nABL-1 — shared-item threshold sweep")
    print("  thr  edges  iso_nifty  iso_peachy  comps  largest")
    for p in sweep:
        print(
            f"  {p.threshold:3d} {p.edges:6d} {p.isolated_left:9d} "
            f"{p.isolated_right:11d} {p.components:5d} {p.largest_component:8d}"
        )

    by_thr = {p.threshold: p for p in sweep}
    assert by_thr[1].edges > 2 * by_thr[2].edges   # 1 floods the graph
    assert by_thr[2].edges == 24                   # the paper's figure
    assert by_thr[3].edges == 0                    # 3 dissolves the cluster


def test_count_vs_jaccard(benchmark, repo, nifty_ids, peachy_ids):
    comparison = benchmark(count_vs_jaccard, repo, nifty_ids, peachy_ids)
    print(
        f"\nABL-1 — count rule {comparison.count_edges} edges vs "
        f"jaccard rule {comparison.jaccard_edges} edges; "
        f"agreement {comparison.agreement:.2f}"
    )
    assert comparison.count_edges == 24
    assert comparison.agreement >= 0.5


def test_ancestor_expansion(benchmark, repo, nifty_ids, peachy_ids):
    effect = benchmark(
        ancestor_expansion_effect, repo, nifty_ids, peachy_ids, threshold=2
    )
    print(
        f"\nABL-1 — direct-selection edges {effect['base_edges']} vs "
        f"ancestor-expanded {effect['expanded_edges']}"
    )
    # Expanding to shared units/areas inflates similarity — evidence for
    # the paper's direct-selection rule.
    assert effect["expanded_edges"] > effect["base_edges"]
